"""Least-squares solvers for the radical-equation system (Eq. 13-16).

``solve_least_squares`` is the plain normal-equation solution Eq. (13);
``solve_weighted_least_squares`` is the paper's iteratively re-weighted
variant: solve, compute residuals, weight each equation by
:func:`repro.core.weights.gaussian_residual_weights`, re-solve with the
diagonal weight matrix (Eq. 16), and repeat until the estimate moves less
than a threshold. ``solve_weighted_least_squares_batch`` runs many small
same-shape systems through one stacked QR path per IRLS round — the
throughput entry point for sweep- and Monte-Carlo-style workloads.

The *mean weighted residual* of the final solve is retained on the
returned :class:`Solution` — it is the signal the adaptive parameter
selection scheme (Sec. IV-C1) thresholds on: estimates whose mean residual
sits near zero were produced from cleaner data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import (
    ITERATION_BUCKETS,
    RESIDUAL_BUCKETS_M,
    UNIT_BUCKETS,
    get_registry,
    metrics_enabled,
    obs_enabled,
    span,
    tracing_enabled,
)
from repro.obs.trace import NULL_SPAN

WeightFunction = Callable[[np.ndarray], np.ndarray]


def _weight_entropy(weights: np.ndarray) -> float:
    """Normalized Shannon entropy of the weight distribution, in [0, 1].

    1.0 means uniform weights (no equation dominates); values near 0 mean
    the solve concentrated on a few equations — a robustness red flag.
    """
    total = float(np.sum(weights))
    if total <= 0.0 or weights.size <= 1:
        return 1.0
    p = weights / total
    nonzero = p[p > 0.0]
    return float(-np.sum(nonzero * np.log(nonzero)) / np.log(weights.size))


def _record_solve_metrics(
    kind: str, iterations: int, converged: bool, residual_norm: float, entropy: float
) -> None:
    """Fold one IRLS solve's convergence summary into the global registry.

    Both the scalar and the batched solver call this per system with the
    same field meanings, so their emitted metrics are directly comparable
    (``tests/test_obs.py`` asserts identical iteration histograms).
    """
    registry = get_registry()
    registry.counter("solver.solves_total", solver=kind).inc()
    registry.counter(
        "solver.converged_total" if converged else "solver.unconverged_total",
        solver=kind,
    ).inc()
    if converged:
        # A "freeze": the member stopped iterating before the cap. Counted
        # identically by the scalar and batched solvers.
        registry.counter("solver.convergence_freezes_total", solver=kind).inc()
    registry.histogram(
        "solver.irls_iterations", buckets=ITERATION_BUCKETS, solver=kind
    ).observe(iterations)
    registry.histogram(
        "solver.final_residual_norm", buckets=RESIDUAL_BUCKETS_M, solver=kind
    ).observe(residual_norm)
    registry.histogram(
        "solver.weight_entropy", buckets=UNIT_BUCKETS, solver=kind
    ).observe(entropy)


@dataclass(frozen=True)
class Solution:
    """Result of a (weighted) least-squares solve.

    Attributes:
        estimate: solved unknowns ``[x, y, (z,) d_r]``, shape ``(dim + 1,)``.
        residuals: final per-equation residuals ``A X - K``.
        normalized_residuals: residuals divided by each row's coefficient
            norm — a distance-like (meters) measure of how far the
            estimate sits from each radical line/plane, comparable across
            scanning ranges and intervals.
        weights: final per-equation weights (all ones for plain LS).
        iterations: number of weighted re-solves performed (0 for plain LS).
        converged: whether the iteration met the tolerance (True for LS).
    """

    estimate: np.ndarray
    residuals: np.ndarray
    normalized_residuals: np.ndarray
    weights: np.ndarray
    iterations: int
    converged: bool

    @property
    def position(self) -> np.ndarray:
        """The spatial part of the estimate (without ``d_r``)."""
        return self.estimate[:-1]

    @property
    def reference_distance(self) -> float:
        """The estimated reference distance ``d_r``, meters."""
        return float(self.estimate[-1])

    @property
    def mean_residual(self) -> float:
        """Weighted mean of the normalized residuals, meters.

        This is the adaptive-selection signal (Sec. IV-C1): the cleaner
        the data the closer it sits to zero. Residuals are normalized by
        their rows' coefficient norms first — raw residuals are in m^2
        with a scale that depends on the scanning interval, and for a
        linear scan the raw *weighted mean* is structurally pinned to ~0
        (the constant sweep-axis column makes the all-ones vector lie in
        the weighted column span), carrying no information.
        """
        total = float(np.sum(self.weights))
        if total == 0.0:
            return float(np.mean(self.normalized_residuals))
        return float(np.sum(self.weights * self.normalized_residuals) / total)

    @property
    def mean_abs_residual(self) -> float:
        """Unweighted mean |normalized residual|, meters — data dirtiness."""
        return float(np.mean(np.abs(self.normalized_residuals)))

    @property
    def rms_residual(self) -> float:
        """Unweighted RMS of the raw residuals (m^2 units)."""
        return float(np.sqrt(np.mean(self.residuals**2)))


def _qr_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Householder-QR solve of an overdetermined full-rank system.

    Returns ``None`` when the system is underdetermined, numerically
    rank-deficient, or produced a non-finite estimate — callers fall back
    to the minimum-norm ``lstsq`` path. This factor/project/substitute
    sequence is exactly what the batched kernel runs per member, which is
    what makes the batch bit-identical to the scalar solver.
    """
    rows, cols = matrix.shape
    if rows < cols or cols == 0:
        return None
    q, r = np.linalg.qr(matrix)
    diagonal = np.abs(np.diagonal(r))
    tolerance = np.finfo(r.dtype).eps * max(rows, cols) * float(diagonal.max())
    if float(diagonal.min()) <= tolerance:
        return None
    solution = np.linalg.solve(r, q.T @ rhs)
    if not np.all(np.isfinite(solution)):
        return None
    return solution


def _weighted_solve(
    matrix: np.ndarray, rhs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Solve ``min ||W^(1/2) (A X - K)||`` on sqrt-weight-scaled rows.

    Full-rank overdetermined systems go through a Householder QR. A
    lower-dimension trajectory (Sec. III-C) zeroes an entire coefficient
    column — e.g. a line scan never excites the cross axis — which would
    fail the full rank test even though the live sub-problem is perfectly
    conditioned; exactly-zero columns are therefore dropped, the live
    columns QR-solved, and the dead coefficients pinned to the
    minimum-norm value 0 (what ``lstsq``'s SVD produces, without the
    SVD). Anything still deficient falls back to ``lstsq``. Row scaling
    plus a factored solve is numerically safer than forming the normal
    equations ``(A^T W A)^-1 A^T W K`` of Eq. (16) and solves the same
    problem.
    """
    root = np.sqrt(weights)
    scaled_matrix = matrix * root[:, np.newaxis]
    scaled_rhs = rhs * root
    live = np.any(scaled_matrix != 0.0, axis=0)
    if live.all():
        solution = _qr_solve(scaled_matrix, scaled_rhs)
        if solution is not None:
            return solution
    else:
        reduced = _qr_solve(scaled_matrix[:, live], scaled_rhs)
        if reduced is not None:
            solution = np.zeros(matrix.shape[1])
            solution[live] = reduced
            return solution
    solution, *_ = np.linalg.lstsq(scaled_matrix, scaled_rhs, rcond=None)
    return solution


def _row_norms(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1)
    return np.where(norms > 0.0, norms, 1.0)


def solve_least_squares(system: LinearSystem) -> Solution:
    """Plain least squares (paper Eq. 13).

    Raises:
        ValueError: if the system has no equations.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    weights = np.ones(system.equation_count)
    estimate = _weighted_solve(system.matrix, system.rhs, weights)
    residuals = system.matrix @ estimate - system.rhs
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=0,
        converged=True,
    )


def solve_weighted_least_squares(
    system: LinearSystem,
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> Solution:
    """Iteratively re-weighted least squares (paper Eq. 14-16).

    Args:
        system: the assembled radical-equation system.
        weight_function: residuals -> weights map; defaults to the paper's
            Gaussian-of-residual weights.
        max_iterations: cap on re-weighting rounds.
        tolerance_m: stop once the estimate moves less than this between
            rounds (the paper's "difference between the last estimation and
            the current estimation is less than the given threshold").

    Raises:
        ValueError: on an empty system or non-positive iteration/tolerance
            parameters.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")
    return _scalar_irls(
        system.matrix, system.rhs, weight_function, max_iterations, tolerance_m
    )


def _scalar_irls(
    matrix: np.ndarray,
    rhs: np.ndarray,
    weight_function: WeightFunction,
    max_iterations: int,
    tolerance_m: float,
) -> Solution:
    """The scalar IRLS loop on raw arrays (validated by the callers).

    Shared by :func:`solve_weighted_least_squares` and the masked batch
    kernel's per-member rank-deficiency fallback, so a member ejected
    from the batch reproduces exactly the trajectory — and emits exactly
    the scalar-solver metrics — the per-system path would have.
    """
    # Observability costs one flag check when disabled; when enabled, the
    # solve is wrapped in a span and per-iteration diagnostics are emitted.
    observing = obs_enabled()
    solve_span = (
        span("solve", solver="scalar", equations=matrix.shape[0])
        if observing and tracing_enabled()
        else NULL_SPAN
    )
    with solve_span as sp:
        weights = np.ones(matrix.shape[0])
        estimate = _weighted_solve(matrix, rhs, weights)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            residuals = matrix @ estimate - rhs
            weights = weight_function(residuals)
            updated = _weighted_solve(matrix, rhs, weights)
            step = float(np.linalg.norm(updated - estimate))
            estimate = updated
            if observing:
                residual_norm = float(np.linalg.norm(residuals))
                sp.add_event(
                    iteration=iterations, residual_norm=residual_norm, step_m=step
                )
                if metrics_enabled():
                    get_registry().histogram(
                        "solver.iteration_residual_norm",
                        buckets=RESIDUAL_BUCKETS_M,
                        solver="scalar",
                    ).observe(residual_norm)
            if step < tolerance_m:
                converged = True
                break
        residuals = matrix @ estimate - rhs
        if observing and metrics_enabled():
            _record_solve_metrics(
                "scalar",
                iterations,
                converged,
                float(np.linalg.norm(residuals)),
                _weight_entropy(weights),
            )
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(matrix),
        weights=weights,
        iterations=iterations,
        converged=converged,
    )


def _masked_qr_solve(
    stack: np.ndarray,
    scaled_rhs: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One batched weighted-LS round over a pre-scaled, column-reduced stack.

    ``stack`` is ``(k, M, width)`` — each member's sqrt-weight-scaled live
    columns, valid rows ``[:counts[i]]`` on top, zeros below; ``scaled_rhs``
    is ``(k, M)`` scaled the same way. Returns ``(estimates, ok)`` where
    ``ok[i]`` is False for members the QR fast path cannot handle
    bit-identically to the scalar solver (numerically rank-deficient or
    non-finite) — those need the per-member ``lstsq`` fallback.

    Bitwise parity with :func:`_qr_solve` rests on three measured facts
    of LAPACK/BLAS on contiguous float64 inputs: (1) Householder QR of a
    matrix with trailing zero rows yields the identical R factor and the
    identical top ``m`` rows of Q as the unpadded QR; (2) the batched
    triangular solve equals the per-matrix solve; (3) batched *matmul*
    projections do NOT reliably equal the scalar ``q.T @ b`` (GEMM vs
    GEMV blocking), so Q^T·b is computed per member on contiguous views.
    """
    batch, _, width = stack.shape
    q, r = np.linalg.qr(stack)
    eps = np.finfo(r.dtype).eps
    diagonals = np.abs(np.diagonal(r, axis1=1, axis2=2))
    tolerances = eps * np.maximum(counts, width) * diagonals.max(axis=1)
    deficient = diagonals.min(axis=1) <= tolerances
    ok = ~deficient
    estimates = np.zeros((batch, width))
    projected = np.empty((batch, width))
    for position in range(batch):
        if deficient[position]:
            continue
        rows = int(counts[position])
        projected[position] = q[position, :rows].T @ scaled_rhs[position, :rows]
    solvable = np.flatnonzero(ok)
    if solvable.size:
        solutions = np.linalg.solve(
            r[solvable], projected[solvable][:, :, np.newaxis]
        )[:, :, 0]
        finite = np.all(np.isfinite(solutions), axis=1)
        estimates[solvable] = solutions
        ok[solvable[~finite]] = False
    return estimates, ok


class _ColumnGroup:
    """Members of a masked batch sharing one exactly-zero-column pattern.

    Mirrors the scalar solver's dead-column handling (:func:`_weighted_solve`)
    batch-side: the pattern is computed once on the *unscaled* stack —
    weights only scale rows, so scaling can only zero further columns, and
    a member whose scaled pattern shrinks (pathological zero weights)
    simply fails the rank test and is ejected to the scalar fallback,
    which is authoritative. ``base`` holds the members' live columns as
    one contiguous reduced stack so each IRLS round scales straight from
    it with no per-round slicing.
    """

    __slots__ = ("members", "keep", "keep_indices", "base")

    def __init__(self, members: np.ndarray, keep: np.ndarray, matrices: np.ndarray):
        self.members = members
        self.keep = keep
        self.keep_indices = np.flatnonzero(keep)
        base = matrices[members]
        self.base = base if keep.all() else np.ascontiguousarray(base[:, :, keep])


def _irls_masked(
    matrices: np.ndarray,
    rhs: np.ndarray,
    counts: np.ndarray,
    weight_function: WeightFunction,
    max_iterations: int,
    tolerance_m: float,
) -> List[Solution]:
    """The masked stacked IRLS iteration on zero-padded inputs.

    Mirrors :func:`_scalar_irls` exactly, member by member: each round
    re-solves only the not-yet-converged members (convergence freezing),
    re-weights each member's *valid* residual slice with the caller's
    weight function, and runs one batched QR over the still-active stack.
    A member the QR path rejects (underdetermined, rank-deficient, or
    non-finite) is ejected and re-run from scratch through
    :func:`_scalar_irls` — an identical trajectory, since every batch
    round before the ejection matched the scalar path bit for bit.
    """
    count, max_rows, cols = matrices.shape
    observing = obs_enabled()
    solve_span = (
        span("solve", solver="batch", systems=count, equations=max_rows)
        if observing and tracing_enabled()
        else NULL_SPAN
    )
    compact = [
        (matrices[index, : counts[index]], rhs[index, : counts[index]])
        for index in range(count)
    ]
    fallback = counts < cols
    estimates = np.zeros((count, cols))
    weights = np.ones((count, max_rows))
    converged = np.zeros(count, dtype=bool)
    iterations = np.zeros(count, dtype=int)

    # Group members by exactly-zero-column pattern once, on the unscaled
    # stack (padding rows are zero, so the any-reduction over all rows
    # equals the one over the valid rows), and pre-extract each group's
    # live columns as a contiguous reduced base stack. Every IRLS round
    # then scales straight from the base — two passes over reduced data
    # instead of the fancy-index + scale + slice copies of the full stack
    # a per-round regrouping would cost.
    live = np.any(matrices != 0.0, axis=1)
    group_id = np.full(count, -1, dtype=int)
    base_pos = np.zeros(count, dtype=int)
    groups: List[_ColumnGroup] = []
    patterns: dict = {}
    for index in np.flatnonzero(~fallback):
        patterns.setdefault(live[index].tobytes(), []).append(index)
    for members_list in patterns.values():
        members = np.asarray(members_list)
        keep = live[members[0]]
        if not keep.any():
            fallback[members] = True
            continue
        group_id[members] = len(groups)
        base_pos[members] = np.arange(members.size)
        groups.append(_ColumnGroup(members, keep, matrices))

    def _solve_round(active: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One weighted round over the active members, full-width results."""
        solved = np.zeros((active.size, cols))
        ok = np.zeros(active.size, dtype=bool)
        gids = group_id[active]
        for gi, group in enumerate(groups):
            apos = np.flatnonzero(gids == gi)
            if apos.size == 0:
                continue
            sel = active[apos]
            root = np.sqrt(weights[sel])
            stack = group.base[base_pos[sel]] * root[:, :, np.newaxis]
            reduced, round_ok = _masked_qr_solve(stack, rhs[sel] * root, counts[sel])
            solved[np.ix_(apos, group.keep_indices)] = reduced
            ok[apos] = round_ok
        return solved, ok

    with solve_span as sp:
        active = np.flatnonzero(~fallback)
        if active.size:
            solved, ok = _solve_round(active)
            estimates[active] = solved
            fallback[active[~ok]] = True
        for round_index in range(1, max_iterations + 1):
            active = np.flatnonzero(~converged & ~fallback)
            if active.size == 0:
                break
            # Residuals and re-weighting run per member on the contiguous
            # valid slice — dgemv and a weight function applied to exactly
            # the array the scalar path sees (a batched GEMM would drift
            # by an ulp on some BLAS builds).
            residual_norms = np.empty(active.size) if observing else None
            for position, index in enumerate(active):
                matrix_c, rhs_c = compact[index]
                residuals = matrix_c @ estimates[index] - rhs_c
                weights[index, : counts[index]] = weight_function(residuals)
                if observing:
                    residual_norms[position] = np.linalg.norm(residuals)
            solved, ok = _solve_round(active)
            fallback[active[~ok]] = True
            good = active[ok]
            steps = np.linalg.norm(solved[ok] - estimates[good], axis=1)
            estimates[good] = solved[ok]
            iterations[good] = round_index
            frozen = good[steps < tolerance_m]
            converged[frozen] = True
            if observing:
                sp.add_event(
                    iteration=round_index,
                    active=int(active.size),
                    frozen=int(frozen.size),
                    mean_residual_norm=float(np.mean(residual_norms)),
                )
                if metrics_enabled():
                    norm_histogram = get_registry().histogram(
                        "solver.iteration_residual_norm",
                        buckets=RESIDUAL_BUCKETS_M,
                        solver="batch",
                    )
                    for norm in residual_norms:
                        norm_histogram.observe(float(norm))
        if observing and metrics_enabled():
            for index in np.flatnonzero(~fallback):
                matrix_c, rhs_c = compact[index]
                final = matrix_c @ estimates[index] - rhs_c
                _record_solve_metrics(
                    "batch",
                    int(iterations[index]),
                    bool(converged[index]),
                    float(np.linalg.norm(final)),
                    _weight_entropy(weights[index, : counts[index]]),
                )
    solutions: List[Solution] = []
    for index in range(count):
        matrix_c, rhs_c = compact[index]
        if fallback[index]:
            solutions.append(
                _scalar_irls(
                    matrix_c, rhs_c, weight_function, max_iterations, tolerance_m
                )
            )
            continue
        residuals = matrix_c @ estimates[index] - rhs_c
        solutions.append(
            Solution(
                estimate=estimates[index].copy(),
                residuals=residuals,
                normalized_residuals=residuals / _row_norms(matrix_c),
                weights=weights[index, : counts[index]].copy(),
                iterations=int(iterations[index]),
                converged=bool(converged[index]),
            )
        )
    return solutions


def solve_weighted_least_squares_masked_batch(
    matrices: np.ndarray,
    rhs: np.ndarray,
    row_mask: np.ndarray,
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> List[Solution]:
    """Solve a padded stack of weighted-LS systems in one masked IRLS pass.

    The throughput entry point for sweep-style workloads (one member per
    adaptive grid cell): member ``i`` consists of the rows of
    ``matrices[i]`` / ``rhs[i]`` where ``row_mask[i]`` is True; padding
    rows are ignored. Each IRLS round runs one batched QR factorization
    over the still-active members with per-member convergence freezing and
    masked Gaussian re-weighting. Every returned :class:`Solution` is
    **bit-identical** to :func:`solve_weighted_least_squares` on the
    corresponding compact system — members the QR fast path cannot handle
    (underdetermined, rank-deficient, non-finite) are ejected to the
    scalar path individually, never poisoning the batch.

    Args:
        matrices: coefficient stack, shape ``(b, max_rows, n)``.
        rhs: right-hand sides, shape ``(b, max_rows)``.
        row_mask: boolean validity mask, shape ``(b, max_rows)``; padding
            may sit anywhere (rows are compacted to a zero-padded prefix
            internally, preserving order).
        weight_function: residuals -> weights map, applied per member to
            its valid residual slice.
        max_iterations: cap on re-weighting rounds (per member).
        tolerance_m: per-member convergence threshold on estimate motion.

    Raises:
        ValueError: on shape mismatches, an all-padding member, or
            non-positive iteration parameters.
    """
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")
    stack = np.asarray(matrices, dtype=float)
    targets = np.asarray(rhs, dtype=float)
    mask = np.asarray(row_mask, dtype=bool)
    if stack.ndim != 3:
        raise ValueError(f"matrices must be (b, max_rows, n), got {stack.shape}")
    if targets.shape != stack.shape[:2]:
        raise ValueError(
            f"rhs must have shape {stack.shape[:2]}, got {targets.shape}"
        )
    if mask.shape != targets.shape:
        raise ValueError(
            f"row_mask must have shape {targets.shape}, got {mask.shape}"
        )
    count, max_rows, _ = stack.shape
    if count == 0:
        return []
    counts = mask.sum(axis=1)
    if np.any(counts == 0):
        raise ValueError("cannot solve an empty system")
    # The batched QR is only bit-identical under *trailing* zero-row
    # padding, so valid rows are compacted to a prefix (order preserved)
    # and everything below is zeroed.
    prefix = np.arange(max_rows)[np.newaxis, :] < counts[:, np.newaxis]
    if np.array_equal(mask, prefix):
        padded = np.where(mask[:, :, np.newaxis], stack, 0.0)
        padded_rhs = np.where(mask, targets, 0.0)
    else:
        padded = np.zeros_like(stack)
        padded_rhs = np.zeros_like(targets)
        for index in range(count):
            rows = np.flatnonzero(mask[index])
            padded[index, : rows.size] = stack[index, rows]
            padded_rhs[index, : rows.size] = targets[index, rows]
    return _irls_masked(
        padded, padded_rhs, counts, weight_function, max_iterations, tolerance_m
    )


def _gaussian_weights_rowwise(
    residuals: np.ndarray, mask: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Eq. (15) Gaussian weights per member of a padded residual stack.

    The vectorized twin of
    :func:`repro.core.weights.gaussian_residual_weights`: moment
    statistics run along axis 1 over each member's *valid* slice (padding
    rows are forced to zero residual and masked out of the mean/std), and
    the same degenerate-spread guard (``sigma <= 1e-12 * max(|r|, 1)`` ->
    uniform weights) applies per member. Runs in the input dtype — this
    is the float32 throughput path, which trades the scalar function's
    bit-for-bit float64 semantics for one ufunc pass over the batch.
    """
    dtype = residuals.dtype
    mu = residuals.sum(axis=1) / counts
    centered = (residuals - mu[:, np.newaxis]) * mask
    squared = centered * centered
    sigma = np.sqrt(squared.sum(axis=1) / counts)
    scale = np.maximum(np.abs(residuals).max(axis=1), dtype.type(1.0))
    degenerate = sigma <= dtype.type(1e-12) * scale
    safe_sigma = np.where(degenerate, dtype.type(1.0), sigma)
    weights = np.exp(-squared / (2.0 * safe_sigma * safe_sigma)[:, np.newaxis])
    weights[degenerate] = 1.0
    return weights * mask


def solve_weighted_least_squares_fast_batch(
    matrices: np.ndarray,
    rhs: np.ndarray,
    row_mask: np.ndarray,
    max_iterations: int = 20,
    tolerance_m: float = 5e-4,
) -> List[Solution]:
    """Approximate batched Gaussian-IRLS via normal equations, one GEMM per round.

    The float32 throughput kernel behind ``ServeConfig(dtype="float32")``.
    Where :func:`solve_weighted_least_squares_masked_batch` reproduces the
    scalar solver bit for bit (per-member QR projections, per-member
    residual GEMVs), this kernel solves the same weighted problem through
    the Eq. (16) normal equations ``(A^T W A) X = A^T W K`` formed for the
    whole batch in two batched GEMMs per IRLS round — an order of
    magnitude faster, at the cost of exactness: run in float32 the
    estimates land within ~1e-4 m of the float64 scalar path on
    serving-scale systems (property-tested in
    ``tests/test_batch_prepare.py``), which is far below the phase-noise
    error floor of the physical setup.

    Exactly-zero coefficient columns (a line-frame scan never excites the
    cross axis) are pinned to the minimum-norm value 0 — their normal
    rows/columns are already exactly zero, so setting the diagonal to 1
    solves the live sub-problem unchanged, matching
    :func:`_weighted_solve`'s dead-column handling. Members the kernel
    cannot solve reliably (singular or non-finite normal systems,
    underdetermined members) are ejected to the exact scalar float64
    path individually, so results degrade to exact, never to garbage.

    Args:
        matrices: coefficient stack, shape ``(b, max_rows, c)``, any float
            dtype (float32 is the intended use); valid rows must sit in a
            zero-padded prefix.
        rhs: right-hand sides, shape ``(b, max_rows)``, same dtype.
        row_mask: boolean validity mask, shape ``(b, max_rows)``, prefix
            form.
        max_iterations: cap on re-weighting rounds (per member).
        tolerance_m: per-member convergence threshold on estimate motion.
            The default 5e-4 trades ~1e-4 m of estimate motion for ~2x
            fewer IRLS rounds; float32 cannot resolve the scalar path's
            1e-6 either way.

    Raises:
        ValueError: on shape mismatches, an all-padding member, or
            non-positive iteration parameters.
    """
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")
    if matrices.ndim != 3:
        raise ValueError(f"matrices must be (b, max_rows, c), got {matrices.shape}")
    if rhs.shape != matrices.shape[:2]:
        raise ValueError(f"rhs must have shape {matrices.shape[:2]}, got {rhs.shape}")
    if row_mask.shape != rhs.shape:
        raise ValueError(f"row_mask must have shape {rhs.shape}, got {row_mask.shape}")
    count, _, cols = matrices.shape
    if count == 0:
        return []
    dtype = matrices.dtype
    counts_int = row_mask.sum(axis=1)
    if np.any(counts_int == 0):
        raise ValueError("cannot solve an empty system")
    counts = counts_int.astype(dtype)
    mask = row_mask.astype(dtype)

    live = np.any(matrices != 0.0, axis=1)
    fallback = counts_int < live.sum(axis=1)
    dead_member, dead_col = np.nonzero(~live)

    # Hoisted per-round operands: the transposed stack and the augmented
    # [A | K] block, so each round is exactly two batched GEMMs — scale
    # A^T by the weights, multiply into [A | K] to get [A^T W A | A^T W K].
    transposed = np.ascontiguousarray(matrices.transpose(0, 2, 1))
    augmented = np.concatenate([matrices, rhs[:, :, np.newaxis]], axis=2)

    estimates = np.zeros((count, cols), dtype=dtype)
    weights = mask.copy()
    frozen = np.zeros(count, dtype=bool)
    converged = np.zeros(count, dtype=bool)
    iterations = np.zeros(count, dtype=int)

    def _normal_solve(round_weights: np.ndarray) -> np.ndarray:
        """One weighted normal-equation solve over the whole batch."""
        normal = (transposed * round_weights[:, np.newaxis, :]) @ augmented
        ata = normal[:, :, :cols]
        atb = normal[:, :, cols]
        if dead_member.size:
            ata[dead_member, dead_col, dead_col] = 1.0
            atb[dead_member, dead_col] = 0.0
        try:
            solved = np.linalg.solve(ata, atb[:, :, np.newaxis])[:, :, 0]
        except np.linalg.LinAlgError:
            # An exactly singular member poisons the whole batched solve;
            # find it by determinant, eject it, and patch its normal
            # system to the identity so the rest of the batch proceeds.
            determinants = np.linalg.det(ata)
            bad = ~np.isfinite(determinants) | (determinants == 0.0)
            fallback[bad] = True
            ata[bad] = np.eye(cols, dtype=dtype)
            atb[bad] = 0.0
            solved = np.linalg.solve(ata, atb[:, :, np.newaxis])[:, :, 0]
        finite = np.all(np.isfinite(solved), axis=1)
        fallback[~finite] = True
        return solved

    estimates = _normal_solve(weights)
    tolerance_sq = dtype.type(tolerance_m) * dtype.type(tolerance_m)
    for round_index in range(1, max_iterations + 1):
        if np.all(frozen | fallback):
            break
        residuals = (matrices @ estimates[:, :, np.newaxis])[:, :, 0] - rhs
        residuals *= mask
        weights = _gaussian_weights_rowwise(residuals, mask, counts)
        solved = _normal_solve(weights)
        update = ~frozen & ~fallback
        steps_sq = np.square(solved - estimates).sum(axis=1)
        estimates[update] = solved[update]
        iterations[update] = round_index
        done = update & (steps_sq < tolerance_sq)
        converged[done] = True
        frozen |= done

    final_residuals = (matrices @ estimates[:, :, np.newaxis])[:, :, 0] - rhs
    final_residuals *= mask
    row_norms = np.sqrt(np.square(matrices).sum(axis=2))
    row_norms[row_norms == 0.0] = 1.0

    solutions: List[Solution] = []
    for index in range(count):
        rows = int(counts_int[index])
        if fallback[index]:
            solutions.append(
                _scalar_irls(
                    np.asarray(matrices[index, :rows], dtype=float),
                    np.asarray(rhs[index, :rows], dtype=float),
                    gaussian_residual_weights,
                    max_iterations,
                    tolerance_m,
                )
            )
            continue
        member_residuals = final_residuals[index, :rows]
        solutions.append(
            Solution(
                estimate=estimates[index],
                residuals=member_residuals,
                normalized_residuals=member_residuals / row_norms[index, :rows],
                weights=weights[index, :rows],
                iterations=int(iterations[index]),
                converged=bool(converged[index]),
            )
        )
    return solutions


def solve_weighted_least_squares_batch(
    systems: Sequence[LinearSystem],
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> List[Solution]:
    """Solve many radical-equation systems in one stacked IRLS pass.

    A convenience wrapper over
    :func:`solve_weighted_least_squares_masked_batch`: the systems — one
    per Monte-Carlo trial or per sweep cell, ragged shapes welcome — are
    zero-padded to the widest member and each IRLS round runs as a single
    batched QR factorization, one LAPACK call instead of ``len(systems)``.
    Underdetermined and rank-deficient members are ejected to the scalar
    :func:`solve_weighted_least_squares` individually. Every returned
    solution is bit-identical to the scalar solver on the same system
    (mixed-dimension batches — differing column counts — fall back to a
    scalar loop).

    Args:
        systems: the assembled systems, in any order; results come back
            in the same order.
        weight_function: residuals -> weights map, applied per system.
        max_iterations: cap on re-weighting rounds (per system).
        tolerance_m: per-system convergence threshold on estimate motion.

    Raises:
        ValueError: if any system is empty or the iteration parameters
            are non-positive.
    """
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")
    members = list(systems)
    if not members:
        return []
    for system in members:
        if system.equation_count == 0:
            raise ValueError("cannot solve an empty system")

    column_counts = {system.matrix.shape[1] for system in members}
    if len(column_counts) > 1:
        return [
            solve_weighted_least_squares(
                system,
                weight_function=weight_function,
                max_iterations=max_iterations,
                tolerance_m=tolerance_m,
            )
            for system in members
        ]

    columns = next(iter(column_counts))
    counts = np.array([system.equation_count for system in members])
    max_rows = int(counts.max())
    matrices = np.zeros((len(members), max_rows, columns))
    rhs = np.zeros((len(members), max_rows))
    mask = np.arange(max_rows)[np.newaxis, :] < counts[:, np.newaxis]
    for index, system in enumerate(members):
        matrices[index, : counts[index]] = system.matrix
        rhs[index, : counts[index]] = system.rhs
    return solve_weighted_least_squares_masked_batch(
        matrices,
        rhs,
        mask,
        weight_function=weight_function,
        max_iterations=max_iterations,
        tolerance_m=tolerance_m,
    )
