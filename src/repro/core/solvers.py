"""Least-squares solvers for the radical-equation system (Eq. 13-16).

``solve_least_squares`` is the plain normal-equation solution Eq. (13);
``solve_weighted_least_squares`` is the paper's iteratively re-weighted
variant: solve, compute residuals, weight each equation by
:func:`repro.core.weights.gaussian_residual_weights`, re-solve with the
diagonal weight matrix (Eq. 16), and repeat until the estimate moves less
than a threshold.

The *mean weighted residual* of the final solve is retained on the
returned :class:`Solution` — it is the signal the adaptive parameter
selection scheme (Sec. IV-C1) thresholds on: estimates whose mean residual
sits near zero were produced from cleaner data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights

WeightFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Solution:
    """Result of a (weighted) least-squares solve.

    Attributes:
        estimate: solved unknowns ``[x, y, (z,) d_r]``, shape ``(dim + 1,)``.
        residuals: final per-equation residuals ``A X - K``.
        normalized_residuals: residuals divided by each row's coefficient
            norm — a distance-like (meters) measure of how far the
            estimate sits from each radical line/plane, comparable across
            scanning ranges and intervals.
        weights: final per-equation weights (all ones for plain LS).
        iterations: number of weighted re-solves performed (0 for plain LS).
        converged: whether the iteration met the tolerance (True for LS).
    """

    estimate: np.ndarray
    residuals: np.ndarray
    normalized_residuals: np.ndarray
    weights: np.ndarray
    iterations: int
    converged: bool

    @property
    def position(self) -> np.ndarray:
        """The spatial part of the estimate (without ``d_r``)."""
        return self.estimate[:-1]

    @property
    def reference_distance(self) -> float:
        """The estimated reference distance ``d_r``, meters."""
        return float(self.estimate[-1])

    @property
    def mean_residual(self) -> float:
        """Weighted mean of the normalized residuals, meters.

        This is the adaptive-selection signal (Sec. IV-C1): the cleaner
        the data the closer it sits to zero. Residuals are normalized by
        their rows' coefficient norms first — raw residuals are in m^2
        with a scale that depends on the scanning interval, and for a
        linear scan the raw *weighted mean* is structurally pinned to ~0
        (the constant sweep-axis column makes the all-ones vector lie in
        the weighted column span), carrying no information.
        """
        total = float(np.sum(self.weights))
        if total == 0.0:
            return float(np.mean(self.normalized_residuals))
        return float(np.sum(self.weights * self.normalized_residuals) / total)

    @property
    def mean_abs_residual(self) -> float:
        """Unweighted mean |normalized residual|, meters — data dirtiness."""
        return float(np.mean(np.abs(self.normalized_residuals)))

    @property
    def rms_residual(self) -> float:
        """Unweighted RMS of the raw residuals (m^2 units)."""
        return float(np.sqrt(np.mean(self.residuals**2)))


def _weighted_solve(
    matrix: np.ndarray, rhs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Solve ``min ||W^(1/2) (A X - K)||`` via scaled lstsq.

    Scaling rows by sqrt(w) and calling lstsq is numerically safer than
    forming the normal equations ``(A^T W A)^-1 A^T W K`` of Eq. (16) and
    solves the same problem; rank deficiency (the lower-dimension issue)
    falls through to the minimum-norm solution instead of blowing up.
    """
    root = np.sqrt(weights)
    solution, *_ = np.linalg.lstsq(matrix * root[:, np.newaxis], rhs * root, rcond=None)
    return solution


def _row_norms(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1)
    return np.where(norms > 0.0, norms, 1.0)


def solve_least_squares(system: LinearSystem) -> Solution:
    """Plain least squares (paper Eq. 13).

    Raises:
        ValueError: if the system has no equations.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    weights = np.ones(system.equation_count)
    estimate = _weighted_solve(system.matrix, system.rhs, weights)
    residuals = system.matrix @ estimate - system.rhs
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=0,
        converged=True,
    )


def solve_weighted_least_squares(
    system: LinearSystem,
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> Solution:
    """Iteratively re-weighted least squares (paper Eq. 14-16).

    Args:
        system: the assembled radical-equation system.
        weight_function: residuals -> weights map; defaults to the paper's
            Gaussian-of-residual weights.
        max_iterations: cap on re-weighting rounds.
        tolerance_m: stop once the estimate moves less than this between
            rounds (the paper's "difference between the last estimation and
            the current estimation is less than the given threshold").

    Raises:
        ValueError: on an empty system or non-positive iteration/tolerance
            parameters.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")

    weights = np.ones(system.equation_count)
    estimate = _weighted_solve(system.matrix, system.rhs, weights)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        residuals = system.matrix @ estimate - system.rhs
        weights = weight_function(residuals)
        updated = _weighted_solve(system.matrix, system.rhs, weights)
        step = float(np.linalg.norm(updated - estimate))
        estimate = updated
        if step < tolerance_m:
            converged = True
            break
    residuals = system.matrix @ estimate - system.rhs
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=iterations,
        converged=converged,
    )
