"""Least-squares solvers for the radical-equation system (Eq. 13-16).

``solve_least_squares`` is the plain normal-equation solution Eq. (13);
``solve_weighted_least_squares`` is the paper's iteratively re-weighted
variant: solve, compute residuals, weight each equation by
:func:`repro.core.weights.gaussian_residual_weights`, re-solve with the
diagonal weight matrix (Eq. 16), and repeat until the estimate moves less
than a threshold. ``solve_weighted_least_squares_batch`` runs many small
same-shape systems through one stacked QR path per IRLS round — the
throughput entry point for sweep- and Monte-Carlo-style workloads.

The *mean weighted residual* of the final solve is retained on the
returned :class:`Solution` — it is the signal the adaptive parameter
selection scheme (Sec. IV-C1) thresholds on: estimates whose mean residual
sits near zero were produced from cleaner data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import (
    ITERATION_BUCKETS,
    RESIDUAL_BUCKETS_M,
    UNIT_BUCKETS,
    get_registry,
    metrics_enabled,
    obs_enabled,
    span,
    tracing_enabled,
)
from repro.obs.trace import NULL_SPAN

WeightFunction = Callable[[np.ndarray], np.ndarray]


def _weight_entropy(weights: np.ndarray) -> float:
    """Normalized Shannon entropy of the weight distribution, in [0, 1].

    1.0 means uniform weights (no equation dominates); values near 0 mean
    the solve concentrated on a few equations — a robustness red flag.
    """
    total = float(np.sum(weights))
    if total <= 0.0 or weights.size <= 1:
        return 1.0
    p = weights / total
    nonzero = p[p > 0.0]
    return float(-np.sum(nonzero * np.log(nonzero)) / np.log(weights.size))


def _record_solve_metrics(
    kind: str, iterations: int, converged: bool, residual_norm: float, entropy: float
) -> None:
    """Fold one IRLS solve's convergence summary into the global registry.

    Both the scalar and the batched solver call this per system with the
    same field meanings, so their emitted metrics are directly comparable
    (``tests/test_obs.py`` asserts identical iteration histograms).
    """
    registry = get_registry()
    registry.counter("solver.solves_total", solver=kind).inc()
    registry.counter(
        "solver.converged_total" if converged else "solver.unconverged_total",
        solver=kind,
    ).inc()
    if converged:
        # A "freeze": the member stopped iterating before the cap. Counted
        # identically by the scalar and batched solvers.
        registry.counter("solver.convergence_freezes_total", solver=kind).inc()
    registry.histogram(
        "solver.irls_iterations", buckets=ITERATION_BUCKETS, solver=kind
    ).observe(iterations)
    registry.histogram(
        "solver.final_residual_norm", buckets=RESIDUAL_BUCKETS_M, solver=kind
    ).observe(residual_norm)
    registry.histogram(
        "solver.weight_entropy", buckets=UNIT_BUCKETS, solver=kind
    ).observe(entropy)


@dataclass(frozen=True)
class Solution:
    """Result of a (weighted) least-squares solve.

    Attributes:
        estimate: solved unknowns ``[x, y, (z,) d_r]``, shape ``(dim + 1,)``.
        residuals: final per-equation residuals ``A X - K``.
        normalized_residuals: residuals divided by each row's coefficient
            norm — a distance-like (meters) measure of how far the
            estimate sits from each radical line/plane, comparable across
            scanning ranges and intervals.
        weights: final per-equation weights (all ones for plain LS).
        iterations: number of weighted re-solves performed (0 for plain LS).
        converged: whether the iteration met the tolerance (True for LS).
    """

    estimate: np.ndarray
    residuals: np.ndarray
    normalized_residuals: np.ndarray
    weights: np.ndarray
    iterations: int
    converged: bool

    @property
    def position(self) -> np.ndarray:
        """The spatial part of the estimate (without ``d_r``)."""
        return self.estimate[:-1]

    @property
    def reference_distance(self) -> float:
        """The estimated reference distance ``d_r``, meters."""
        return float(self.estimate[-1])

    @property
    def mean_residual(self) -> float:
        """Weighted mean of the normalized residuals, meters.

        This is the adaptive-selection signal (Sec. IV-C1): the cleaner
        the data the closer it sits to zero. Residuals are normalized by
        their rows' coefficient norms first — raw residuals are in m^2
        with a scale that depends on the scanning interval, and for a
        linear scan the raw *weighted mean* is structurally pinned to ~0
        (the constant sweep-axis column makes the all-ones vector lie in
        the weighted column span), carrying no information.
        """
        total = float(np.sum(self.weights))
        if total == 0.0:
            return float(np.mean(self.normalized_residuals))
        return float(np.sum(self.weights * self.normalized_residuals) / total)

    @property
    def mean_abs_residual(self) -> float:
        """Unweighted mean |normalized residual|, meters — data dirtiness."""
        return float(np.mean(np.abs(self.normalized_residuals)))

    @property
    def rms_residual(self) -> float:
        """Unweighted RMS of the raw residuals (m^2 units)."""
        return float(np.sqrt(np.mean(self.residuals**2)))


def _weighted_solve(
    matrix: np.ndarray, rhs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Solve ``min ||W^(1/2) (A X - K)||`` via scaled lstsq.

    Scaling rows by sqrt(w) and calling lstsq is numerically safer than
    forming the normal equations ``(A^T W A)^-1 A^T W K`` of Eq. (16) and
    solves the same problem; rank deficiency (the lower-dimension issue)
    falls through to the minimum-norm solution instead of blowing up.
    """
    root = np.sqrt(weights)
    solution, *_ = np.linalg.lstsq(matrix * root[:, np.newaxis], rhs * root, rcond=None)
    return solution


def _row_norms(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1)
    return np.where(norms > 0.0, norms, 1.0)


def solve_least_squares(system: LinearSystem) -> Solution:
    """Plain least squares (paper Eq. 13).

    Raises:
        ValueError: if the system has no equations.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    weights = np.ones(system.equation_count)
    estimate = _weighted_solve(system.matrix, system.rhs, weights)
    residuals = system.matrix @ estimate - system.rhs
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=0,
        converged=True,
    )


def solve_weighted_least_squares(
    system: LinearSystem,
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> Solution:
    """Iteratively re-weighted least squares (paper Eq. 14-16).

    Args:
        system: the assembled radical-equation system.
        weight_function: residuals -> weights map; defaults to the paper's
            Gaussian-of-residual weights.
        max_iterations: cap on re-weighting rounds.
        tolerance_m: stop once the estimate moves less than this between
            rounds (the paper's "difference between the last estimation and
            the current estimation is less than the given threshold").

    Raises:
        ValueError: on an empty system or non-positive iteration/tolerance
            parameters.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")

    # Observability costs one flag check when disabled; when enabled, the
    # solve is wrapped in a span and per-iteration diagnostics are emitted.
    observing = obs_enabled()
    solve_span = (
        span("solve", solver="scalar", equations=system.equation_count)
        if observing and tracing_enabled()
        else NULL_SPAN
    )
    with solve_span as sp:
        weights = np.ones(system.equation_count)
        estimate = _weighted_solve(system.matrix, system.rhs, weights)
        converged = False
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            residuals = system.matrix @ estimate - system.rhs
            weights = weight_function(residuals)
            updated = _weighted_solve(system.matrix, system.rhs, weights)
            step = float(np.linalg.norm(updated - estimate))
            estimate = updated
            if observing:
                residual_norm = float(np.linalg.norm(residuals))
                sp.add_event(
                    iteration=iterations, residual_norm=residual_norm, step_m=step
                )
                if metrics_enabled():
                    get_registry().histogram(
                        "solver.iteration_residual_norm",
                        buckets=RESIDUAL_BUCKETS_M,
                        solver="scalar",
                    ).observe(residual_norm)
            if step < tolerance_m:
                converged = True
                break
        residuals = system.matrix @ estimate - system.rhs
        if observing and metrics_enabled():
            _record_solve_metrics(
                "scalar",
                iterations,
                converged,
                float(np.linalg.norm(residuals)),
                _weight_entropy(weights),
            )
    return Solution(
        estimate=estimate,
        residuals=residuals,
        normalized_residuals=residuals / _row_norms(system.matrix),
        weights=weights,
        iterations=iterations,
        converged=converged,
    )


def _weighted_solve_stack(
    matrices: np.ndarray, rhs: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Solve a stack of weighted LS problems via batched QR.

    ``matrices`` is ``(b, m, n)``, ``rhs`` and ``weights`` are ``(b, m)``.
    For full-rank systems this computes the same minimizer as
    :func:`_weighted_solve`; a rank-deficient member surfaces as a
    ``LinAlgError`` (or non-finite estimate, promoted to one) so the
    caller can fall back to the per-system minimum-norm path.
    """
    root = np.sqrt(weights)
    q, r = np.linalg.qr(matrices * root[:, :, np.newaxis])
    # A rank-deficient member shows up as a (numerically) zero diagonal
    # entry of its R factor; np.linalg.solve would return garbage rather
    # than the minimum-norm solution, so reject the whole batch instead.
    diagonals = np.abs(np.diagonal(r, axis1=1, axis2=2))
    tolerance = np.finfo(r.dtype).eps * max(matrices.shape[1:]) * diagonals.max(axis=1)
    if np.any(diagonals.min(axis=1) <= tolerance):
        raise np.linalg.LinAlgError("rank-deficient system in batch")
    projected = np.einsum("bmn,bm->bn", q, rhs * root)
    estimates = np.linalg.solve(r, projected[:, :, np.newaxis])[:, :, 0]
    if not np.all(np.isfinite(estimates)):
        raise np.linalg.LinAlgError("batched solve produced non-finite estimates")
    return estimates


def _irls_batch(
    systems: List[LinearSystem],
    matrices: np.ndarray,
    rhs: np.ndarray,
    weight_function: WeightFunction,
    max_iterations: int,
    tolerance_m: float,
) -> List[Solution]:
    """The stacked IRLS iteration behind :func:`solve_weighted_least_squares_batch`.

    Mirrors :func:`solve_weighted_least_squares` exactly, system by
    system: every round re-solves only the not-yet-converged members, so
    a system's (residual, weight, estimate) sequence is the same one the
    scalar solver would produce.
    """
    count, row_count, _ = matrices.shape
    observing = obs_enabled()
    solve_span = (
        span("solve", solver="batch", systems=count, equations=row_count)
        if observing and tracing_enabled()
        else NULL_SPAN
    )
    weights = np.ones((count, row_count))
    with solve_span as sp:
        estimates = _weighted_solve_stack(matrices, rhs, weights)
        converged = np.zeros(count, dtype=bool)
        iterations = np.zeros(count, dtype=int)
        for round_index in range(1, max_iterations + 1):
            active = np.flatnonzero(~converged)
            if active.size == 0:
                break
            residuals = (
                np.einsum("bmn,bn->bm", matrices[active], estimates[active]) - rhs[active]
            )
            new_weights = np.stack([weight_function(row) for row in residuals])
            updated = _weighted_solve_stack(matrices[active], rhs[active], new_weights)
            steps = np.linalg.norm(updated - estimates[active], axis=1)
            estimates[active] = updated
            weights[active] = new_weights
            iterations[active] = round_index
            frozen = active[steps < tolerance_m]
            converged[frozen] = True
            if observing:
                # Per-round diagnostics: residual norms of the members that
                # iterated this round, plus how many froze (converged).
                residual_norms = np.linalg.norm(residuals, axis=1)
                sp.add_event(
                    iteration=round_index,
                    active=int(active.size),
                    frozen=int(frozen.size),
                    mean_residual_norm=float(np.mean(residual_norms)),
                )
                if metrics_enabled():
                    norm_histogram = get_registry().histogram(
                        "solver.iteration_residual_norm",
                        buckets=RESIDUAL_BUCKETS_M,
                        solver="batch",
                    )
                    for norm in residual_norms:
                        norm_histogram.observe(float(norm))
        final_residuals = np.einsum("bmn,bn->bm", matrices, estimates) - rhs
        if observing and metrics_enabled():
            for index in range(count):
                _record_solve_metrics(
                    "batch",
                    int(iterations[index]),
                    bool(converged[index]),
                    float(np.linalg.norm(final_residuals[index])),
                    _weight_entropy(weights[index]),
                )
    return [
        Solution(
            estimate=estimates[index].copy(),
            residuals=final_residuals[index].copy(),
            normalized_residuals=final_residuals[index] / _row_norms(system.matrix),
            weights=weights[index].copy(),
            iterations=int(iterations[index]),
            converged=bool(converged[index]),
        )
        for index, system in enumerate(systems)
    ]


def solve_weighted_least_squares_batch(
    systems: Sequence[LinearSystem],
    weight_function: WeightFunction = gaussian_residual_weights,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> List[Solution]:
    """Solve many radical-equation systems in one stacked IRLS pass.

    The common case — every system has the same ``(m, dim + 1)`` shape,
    e.g. one per Monte-Carlo trial or per sweep cell of a fixed scan —
    stacks all coefficient matrices and runs each IRLS round as a single
    batched QR factorization, one BLAS call instead of ``len(systems)``.
    Ragged batches (mixed shapes), underdetermined systems, and
    rank-deficient members fall back to the per-system
    :func:`solve_weighted_least_squares`, so the returned solutions always
    match the scalar solver (to floating-point accuracy; the batched path
    uses QR where the scalar path uses SVD-based ``lstsq``).

    Args:
        systems: the assembled systems, in any order; results come back
            in the same order.
        weight_function: residuals -> weights map, applied per system.
        max_iterations: cap on re-weighting rounds (per system).
        tolerance_m: per-system convergence threshold on estimate motion.

    Raises:
        ValueError: if any system is empty or the iteration parameters
            are non-positive.
    """
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    if tolerance_m <= 0.0:
        raise ValueError(f"tolerance must be positive, got {tolerance_m}")
    members = list(systems)
    if not members:
        return []
    for system in members:
        if system.equation_count == 0:
            raise ValueError("cannot solve an empty system")

    def fallback() -> List[Solution]:
        return [
            solve_weighted_least_squares(
                system,
                weight_function=weight_function,
                max_iterations=max_iterations,
                tolerance_m=tolerance_m,
            )
            for system in members
        ]

    shapes = {system.matrix.shape for system in members}
    if len(shapes) > 1:
        return fallback()
    row_count, column_count = next(iter(shapes))
    if row_count < column_count:
        return fallback()

    matrices = np.stack([system.matrix for system in members]).astype(float)
    rhs = np.stack([system.rhs for system in members]).astype(float)
    try:
        return _irls_batch(
            members, matrices, rhs, weight_function, max_iterations, tolerance_m
        )
    except np.linalg.LinAlgError:
        return fallback()
