"""Multi-reference radical systems: several scans, one target.

The base model (Eq. 7/9) carries *one* unknown reference distance ``d_r``
because the whole scan is one continuous phase profile. Two practical
situations break that assumption:

* **separate sweeps** — the Fig. 11 lines scanned as independent passes
  (no transit moves): each sweep's unwrapped profile floats on its own
  datum, so phase differences *across* sweeps are meaningless without the
  stitching trick;
* **frequency blocks** — a hopping reader dwells on one channel per block;
  phases on different channels are not mutually comparable (different
  wavelength *and* channel-dependent hardware offset).

Both are handled by giving every *run* its own reference unknown. With
runs ``1..R`` the unknown vector becomes ``[x, y, (z,) d_r1, ..., d_rR]``
and a pair of reads within run ``k`` contributes::

    2(p_i - p_j)·p + 2(Δd_i - Δd_j)·d_rk = ‖p_i‖² - ‖p_j‖² - Δd_i² + Δd_j²

exactly Eq. (7)/(9) with the ``d_r`` coefficient placed in run ``k``'s
column. The target couples the runs; no cross-run pairs (and hence no
phase stitching) are needed. Per-run wavelengths are supported, so a
frequency-hopped scan localizes without ever comparing phases across
channels.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.pairing import spacing_pairs
from repro.core.system import delta_distances
from repro.core.weights import gaussian_residual_weights
from repro.signalproc.smoothing import smooth_phase_profile
from repro.signalproc.unwrap import unwrap_phase

Pair = Tuple[int, int]


@dataclass(frozen=True)
class MultiReferenceSystem:
    """A radical system with one reference-distance column per run.

    Attributes:
        matrix: shape ``(m, dim + run_count)``.
        rhs: shape ``(m,)``.
        dim: spatial dimension (2 or 3).
        run_ids: the distinct run labels, in column order.
    """

    matrix: np.ndarray
    rhs: np.ndarray
    dim: int
    run_ids: Tuple[int, ...]

    @property
    def run_count(self) -> int:
        """Number of independent phase runs."""
        return len(self.run_ids)

    @property
    def equation_count(self) -> int:
        """Number of radical equations."""
        return int(self.matrix.shape[0])


@dataclass(frozen=True)
class MultiReferenceSolution:
    """Solution of a multi-reference system.

    Attributes:
        position: estimated target, shape ``(dim,)``.
        reference_distances: per-run ``d_r`` estimates, keyed by run id.
        residuals: final per-equation residuals.
        weights: final per-equation weights.
        iterations: WLS re-weighting rounds performed.
    """

    position: np.ndarray
    reference_distances: Dict[int, float]
    residuals: np.ndarray
    weights: np.ndarray
    iterations: int


def build_multireference_system(
    positions: np.ndarray,
    delta_d: np.ndarray,
    run_ids: np.ndarray,
    pairs: Sequence[Pair],
    dim: int | None = None,
) -> MultiReferenceSystem:
    """Assemble the system from per-read delta distances and run labels.

    ``delta_d[i]`` must be relative to *its own run's* reference read —
    use :func:`delta_distances` per run (or the ``"lion-multiref"``
    estimator which does all of this). Every pair must stay within one
    run.

    Raises:
        ValueError: on shape mismatches, cross-run pairs, coincident pair
            positions, or an invalid dimension.
    """
    points = np.asarray(positions, dtype=float)
    deltas = np.asarray(delta_d, dtype=float)
    runs = np.asarray(run_ids, dtype=int)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    n = points.shape[0]
    if deltas.shape != (n,) or runs.shape != (n,):
        raise ValueError("delta_d and run_ids must match positions length")
    if dim is None:
        dim = points.shape[1]
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    if dim == 2 and points.shape[1] == 3:
        points = points[:, :2]
    elif dim == 3 and points.shape[1] == 2:
        points = np.hstack([points, np.zeros((n, 1))])
    if len(pairs) == 0:
        raise ValueError("need at least one pair")

    distinct = tuple(int(v) for v in np.unique(runs))
    column_of = {run: dim + index for index, run in enumerate(distinct)}

    index = np.asarray(pairs, dtype=int)
    if index.min() < 0 or index.max() >= n:
        raise ValueError("pair index out of range")
    run_i = runs[index[:, 0]]
    run_j = runs[index[:, 1]]
    if np.any(run_i != run_j):
        raise ValueError("pairs must not cross runs (phase data are not comparable)")

    pi = points[index[:, 0]]
    pj = points[index[:, 1]]
    if np.any(np.all(np.isclose(pi, pj), axis=1)):
        raise ValueError("radical equation undefined for coincident tag positions")
    di = deltas[index[:, 0]]
    dj = deltas[index[:, 1]]

    matrix = np.zeros((index.shape[0], dim + len(distinct)))
    matrix[:, :dim] = 2.0 * (pi - pj)
    omega = 2.0 * (di - dj)
    for row, run in enumerate(run_i):
        matrix[row, column_of[int(run)]] = omega[row]
    rhs = (
        np.einsum("ij,ij->i", pi, pi)
        - np.einsum("ij,ij->i", pj, pj)
        - di**2
        + dj**2
    )
    return MultiReferenceSystem(matrix=matrix, rhs=rhs, dim=dim, run_ids=distinct)


def solve_multireference(
    system: MultiReferenceSystem,
    weighted: bool = True,
    max_iterations: int = 20,
    tolerance_m: float = 1e-6,
) -> MultiReferenceSolution:
    """(Weighted) least squares over the multi-reference unknowns.

    Raises:
        ValueError: on an empty system or bad iteration parameters.
    """
    if system.equation_count == 0:
        raise ValueError("cannot solve an empty system")
    if max_iterations <= 0 or tolerance_m <= 0.0:
        raise ValueError("iteration parameters must be positive")

    weights = np.ones(system.equation_count)

    def solve(w: np.ndarray) -> np.ndarray:
        root = np.sqrt(w)
        estimate, *_ = np.linalg.lstsq(
            system.matrix * root[:, np.newaxis], system.rhs * root, rcond=None
        )
        return estimate

    estimate = solve(weights)
    iterations = 0
    if weighted:
        for iterations in range(1, max_iterations + 1):
            residuals = system.matrix @ estimate - system.rhs
            weights = gaussian_residual_weights(residuals)
            updated = solve(weights)
            step = float(np.linalg.norm(updated - estimate))
            estimate = updated
            if step < tolerance_m:
                break
    residuals = system.matrix @ estimate - system.rhs
    references = {
        run: float(estimate[system.dim + index])
        for index, run in enumerate(system.run_ids)
    }
    return MultiReferenceSolution(
        position=estimate[: system.dim].copy(),
        reference_distances=references,
        residuals=residuals,
        weights=weights,
        iterations=iterations,
    )


def _locate_multireference_impl(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    run_ids: np.ndarray,
    dim: int = 3,
    interval_m: float = 0.25,
    wavelengths_m: "Dict[int, float] | float" = DEFAULT_WAVELENGTH_M,
    smoothing_window: int = 9,
    weighted: bool = True,
    positive_side: bool = True,
) -> MultiReferenceSolution:
    """End-to-end multi-run localization from wrapped phases.

    Per run: unwrap (runs are assumed internally continuous), smooth,
    convert to delta distances against the run's middle read, and emit
    spacing pairs. No stitching, no transit reads, no cross-run phase
    comparison — the runs are tied together only through the shared
    target coordinates.

    Args:
        positions: all reads' positions, shape ``(n, 2)`` or ``(n, 3)``.
        wrapped_phase_rad: all reads' wrapped phases, shape ``(n,)``,
            time-ordered within each run.
        run_ids: per-read run labels (sweep index, hop-block index, ...).
        dim: answer dimension. The combined scan geometry must excite all
            ``dim`` coordinates (no lower-dimension recovery here).
        interval_m: pair spacing within each run.
        wavelengths_m: a single wavelength, or a mapping run id ->
            wavelength for frequency-hopped scans.
        smoothing_window: per-run moving-average window (1 disables).
        weighted: use the Gaussian-residual WLS (default) or plain LS.
        positive_side: deployment prior used when an unobserved
            coordinate must be recovered from a single reference sphere
            (collinear reference geometry), as in
            :func:`repro.core.lowerdim.recover_coordinate_from_reference`.

    Raises:
        ValueError: on shape errors, a run too short to pair, or an
            unknown run's wavelength.
    """
    points = np.asarray(positions, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    runs = np.asarray(run_ids, dtype=int)
    if points.ndim != 2 or phases.shape != (points.shape[0],) or runs.shape != phases.shape:
        raise ValueError("positions, phases and run_ids must align")

    work_points = points[:, :dim] if dim <= points.shape[1] else np.hstack(
        [points, np.zeros((points.shape[0], dim - points.shape[1]))]
    )
    deltas = np.zeros(points.shape[0])
    pairs: List[Pair] = []
    for run in (int(v) for v in np.unique(runs)):
        members = np.flatnonzero(runs == run)
        if members.size < 3:
            raise ValueError(f"run {run} has too few reads ({members.size})")
        if isinstance(wavelengths_m, dict):
            if run not in wavelengths_m:
                raise ValueError(f"no wavelength given for run {run}")
            wavelength = wavelengths_m[run]
        else:
            wavelength = float(wavelengths_m)
        profile = unwrap_phase(phases[members])
        if smoothing_window > 1:
            profile = smooth_phase_profile(profile, smoothing_window)
        deltas[members] = delta_distances(profile, members.size // 2, wavelength)
        local_pairs = spacing_pairs(work_points[members], interval_m)
        pairs += [(int(members[i]), int(members[j])) for i, j in local_pairs]

    system = build_multireference_system(work_points, deltas, runs, pairs, dim=dim)
    solution = solve_multireference(system, weighted=weighted)

    # Parallel sweeps leave the coordinates orthogonal to every run's
    # direction unobserved by the within-run rows (their columns are
    # zero). The per-run reference distances recover them: each run's
    # d_rk is the absolute distance to a *known* reference point, and the
    # radical rows between those reference spheres are linear in the
    # target with no extra unknowns.
    excitation = np.sqrt(np.mean(system.matrix[:, :dim] ** 2, axis=0))
    unobserved = excitation < 1e-9 * max(float(excitation.max()), 1.0)
    if np.any(unobserved):
        reference_points = []
        reference_distances = []
        for run in system.run_ids:
            members = np.flatnonzero(runs == run)
            reference_points.append(work_points[members[members.size // 2]])
            reference_distances.append(solution.reference_distances[run])
        try:
            refined = _refine_with_references(
                solution.position,
                ~unobserved,
                np.vstack(reference_points),
                np.asarray(reference_distances),
            )
        except ValueError:
            # Collinear references cannot trilaterate (e.g. hop blocks on
            # one straight sweep): fall back to the single-sphere square-
            # root recovery with the deployment prior, as in the base
            # lower-dimension path (Sec. III-C).
            dead_axes = np.flatnonzero(unobserved)
            if dead_axes.size != 1:
                raise
            from repro.core.lowerdim import recover_coordinate_from_reference

            recovery = recover_coordinate_from_reference(
                solution.position,
                int(dead_axes[0]),
                max(reference_distances[0], 0.0),
                reference_points[0],
                positive_side=positive_side,
            )
            refined = recovery.position
        solution = MultiReferenceSolution(
            position=refined,
            reference_distances=solution.reference_distances,
            residuals=solution.residuals,
            weights=solution.weights,
            iterations=solution.iterations,
        )
    return solution


def _refine_with_references(
    position: np.ndarray,
    observed_mask: np.ndarray,
    reference_points: np.ndarray,
    reference_distances: np.ndarray,
) -> np.ndarray:
    """Fill unobserved coordinates via reference-sphere radical rows.

    Solves the linear system combining (a) radical rows between the
    reference spheres ``|p - ref_k| = d_rk`` — pairwise differences cancel
    the quadratic target terms — and (b) identity rows pinning the
    already-observed coordinates to their first-stage estimates.

    Raises:
        ValueError: if the combined system still cannot determine the
            target (e.g. all reference points collinear with the
            unobserved plane).
    """
    dim = position.shape[0]
    rows: List[np.ndarray] = []
    rhs: List[float] = []
    count = reference_points.shape[0]
    for i in range(count):
        for j in range(i + 1, count):
            difference = reference_points[i] - reference_points[j]
            if np.linalg.norm(difference) < 1e-12:
                continue
            rows.append(2.0 * difference)
            rhs.append(
                float(
                    reference_points[i] @ reference_points[i]
                    - reference_points[j] @ reference_points[j]
                    - reference_distances[i] ** 2
                    + reference_distances[j] ** 2
                )
            )
    # Pin observed coordinates strongly (they carry far more data than the
    # handful of reference rows).
    anchor_weight = 1e3
    for axis in np.flatnonzero(observed_mask):
        row = np.zeros(dim)
        row[axis] = anchor_weight
        rows.append(row)
        rhs.append(anchor_weight * float(position[axis]))
    matrix = np.vstack(rows)
    vector = np.asarray(rhs)
    if np.linalg.matrix_rank(matrix) < dim:
        raise ValueError(
            "reference geometry cannot determine the unobserved coordinates "
            "(reference points do not span them)"
        )
    refined, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
    return refined


def locate_multireference(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    run_ids: np.ndarray,
    dim: int = 3,
    interval_m: float = 0.25,
    wavelengths_m: "Dict[int, float] | float" = DEFAULT_WAVELENGTH_M,
    smoothing_window: int = 9,
    weighted: bool = True,
    positive_side: bool = True,
) -> MultiReferenceSolution:
    """Deprecated entry point for multi-run localization.

    Use the ``"lion-multiref"`` estimator from :mod:`repro.pipeline`
    instead; this shim forwards through the registry (identical results)
    and will be removed once downstream callers have migrated. See
    :func:`_locate_multireference_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "locate_multireference() is deprecated; use "
        "repro.pipeline.estimate('lion-multiref', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import pipeline

    config = pipeline.MultiRefLionConfig(
        dim=dim,
        interval_m=interval_m,
        wavelength_m=(
            DEFAULT_WAVELENGTH_M
            if isinstance(wavelengths_m, dict)
            else float(wavelengths_m)
        ),
        wavelengths_by_run=wavelengths_m if isinstance(wavelengths_m, dict) else None,
        smoothing_window=smoothing_window,
        weighted=weighted,
        positive_side=positive_side,
    )
    request = pipeline.EstimationRequest(
        positions=positions, phases_rad=wrapped_phase_rad, run_ids=run_ids
    )
    return pipeline.estimate("lion-multiref", request, config).raw
