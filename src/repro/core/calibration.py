"""Phase calibration: center displacement and phase offset (paper Sec. IV-C).

Given an antenna located in 3D by :class:`repro.core.localizer.LionLocalizer`
(or the adaptive sweep), calibration produces:

* the **center displacement** — estimated phase center minus the manually
  measured physical center; downstream localization should use
  ``physical_center + displacement`` as the signal origin;
* the **phase offset** ``delta_theta = theta_T + theta_R`` (Eq. 17) — the
  circular mean over reads of (measured phase − distance-predicted phase),
  where the distance is computed from the *estimated* phase center.

The absolute offset mixes tag and antenna hardware and cannot be split
(Sec. IV-C2); what multi-antenna systems need is the *difference* of
offsets between antennas interrogating the same tag, which cancels
``theta_T`` — provided by :func:`relative_phase_offsets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import AdaptiveResult, ParameterGrid, _adaptive_localize_impl
from repro.core.localizer import LionLocalizer
from repro.signalproc.stats import circular_mean


@dataclass(frozen=True)
class AntennaCalibration:
    """Calibration record for one antenna.

    Attributes:
        antenna_name: identifier.
        physical_center: the manually measured center, shape ``(3,)``.
        estimated_center: the located phase center, shape ``(3,)``.
        phase_offset_rad: estimated ``theta_T + theta_R`` in ``[0, 2*pi)``
            (tag-dependent; difference between antennas sharing a tag is
            tag-free).
    """

    antenna_name: str
    physical_center: np.ndarray
    estimated_center: np.ndarray
    phase_offset_rad: float

    @property
    def center_displacement(self) -> np.ndarray:
        """Estimated phase center minus physical center, meters."""
        return self.estimated_center - self.physical_center

    @property
    def displacement_magnitude_m(self) -> float:
        """Euclidean size of the center displacement."""
        return float(np.linalg.norm(self.center_displacement))


def estimate_phase_offset(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    phase_center: np.ndarray,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> float:
    """Eq. (17): circular-mean phase offset given a known phase center.

    For each read, the distance from the (estimated) phase center to the
    tag position predicts the distance phase
    ``theta_d = (4*pi/lambda) * d``; the per-read offset is the wrapped
    difference ``theta_measured - theta_d``, and the estimate is the
    circular mean over reads. (The paper's Eq. 17 prints the coefficient
    as lambda/(4*pi) — a typo for 4*pi/lambda, cf. Eq. 1 — and averages
    before wrapping; the circular mean is the numerically correct form.)

    Args:
        positions: tag positions, shape ``(n, 3)`` (or ``(n, 2)`` for
            planar setups, interpreted as z = 0).
        wrapped_phase_rad: the *raw wrapped* measured phases, shape ``(n,)``.
        phase_center: the calibrated phase center.
        wavelength_m: carrier wavelength.

    Raises:
        ValueError: on shape mismatch or empty input.
    """
    points = np.asarray(positions, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if phases.shape != (points.shape[0],) or phases.size == 0:
        raise ValueError("phases must be non-empty and match positions")
    center = np.asarray(phase_center, dtype=float)
    if center.shape[0] != points.shape[1]:
        if center.shape[0] == 3 and points.shape[1] == 2:
            center = center[:2]
        else:
            raise ValueError(
                f"phase center dim {center.shape} incompatible with positions {points.shape}"
            )
    distances = np.linalg.norm(points - center[np.newaxis, :], axis=1)
    theta_d = (2.0 * TWO_PI / wavelength_m) * distances
    return circular_mean(np.mod(phases - theta_d, TWO_PI))


def calibrate_antenna(
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    physical_center: np.ndarray,
    antenna_name: str = "antenna",
    localizer: LionLocalizer | None = None,
    segment_ids: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
    grid: ParameterGrid | None = None,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> tuple[AntennaCalibration, AdaptiveResult]:
    """Full phase calibration of one antenna from a known-trajectory scan.

    Runs the adaptive 3D localization to pinpoint the phase center, then
    Eq. (17) for the phase offset.

    Args:
        positions: tag positions of the scan, shape ``(n, 3)``.
        wrapped_phase_rad: reported wrapped phases, shape ``(n,)``.
        physical_center: the manually measured antenna center.
        antenna_name: identifier for the record.
        localizer: optional pre-configured localizer; defaults to a 3D WLS
            localizer at ``wavelength_m``.
        segment_ids: per-read sweep ids (three-line scans).
        exclude_mask: reads to exclude from equations (transits).
        grid: adaptive sweep grid; defaults to the paper's.

    Returns:
        ``(calibration, adaptive_result)``.
    """
    if localizer is None:
        localizer = LionLocalizer(dim=3, wavelength_m=wavelength_m, method="wls")
    if localizer.dim != 3:
        raise ValueError("phase-center calibration requires a 3-D localizer")
    adaptive = _adaptive_localize_impl(
        localizer,
        positions,
        wrapped_phase_rad,
        grid=grid,
        segment_ids=segment_ids,
        exclude_mask=exclude_mask,
    )
    estimated_center = adaptive.position
    offset = estimate_phase_offset(
        np.asarray(positions, dtype=float),
        wrapped_phase_rad,
        estimated_center,
        wavelength_m=localizer.wavelength_m,
    )
    calibration = AntennaCalibration(
        antenna_name=antenna_name,
        physical_center=np.asarray(physical_center, dtype=float),
        estimated_center=estimated_center,
        phase_offset_rad=offset,
    )
    return calibration, adaptive


def relative_phase_offsets(
    calibrations: Sequence[AntennaCalibration],
    reference_index: int = 0,
) -> Dict[str, float]:
    """Per-antenna offsets relative to a reference antenna, in ``(-pi, pi]``.

    When every calibration used the *same tag*, ``theta_T`` cancels in the
    difference, leaving pure antenna-to-antenna offsets — exactly what
    differential (hyperbola/hologram) localization needs (Sec. IV-C2).

    Raises:
        ValueError: on empty input or a bad reference index.
    """
    if not calibrations:
        raise ValueError("need at least one calibration")
    if not 0 <= reference_index < len(calibrations):
        raise ValueError(f"reference index {reference_index} out of range")
    reference = calibrations[reference_index].phase_offset_rad
    result: Dict[str, float] = {}
    for calibration in calibrations:
        delta = np.mod(calibration.phase_offset_rad - reference + np.pi, TWO_PI) - np.pi
        result[calibration.antenna_name] = float(delta)
    return result
