"""Adaptive parameter selection (paper Sec. IV-C1, evaluated in Sec. V-E).

Scanning range and scanning interval strongly affect accuracy: too small a
range and the phase barely varies (plane-wave regime); too large and
off-beam reads inject noise; too small an interval and the phase difference
drowns in noise. Instead of hand-tuning, LION sweeps a grid of
(range, interval) settings, solves each, and observes that *the weighted
mean residual of good solves sits near zero* — weighting skews the mean
residual away from zero exactly when the data is dirty. The scheme keeps
the estimates whose |mean residual| is smallest and averages them.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.localizer import (
    DegenerateGeometryError,
    LionLocalizer,
    LocalizationResult,
    TooFewReadsError,
)
from repro.core.sweep import fused_sweep
from repro.obs import (
    RESIDUAL_BUCKETS_M,
    get_registry,
    metrics_enabled,
    span,
)
from repro.parallel import (
    Executor,
    SharedArrayBundle,
    SharedArraySpec,
    attach_shared_arrays,
    get_executor,
)


@dataclass(frozen=True)
class ParameterGrid:
    """The (scanning range, scanning interval) sweep grid.

    Attributes:
        ranges_m: candidate scanning-range widths (paper: 0.6-1.1 m).
        intervals_m: candidate scanning intervals (paper: 0.10-0.35 m).
        axis: coordinate along which the range window applies (0 = x).
        center: center of the range window along that axis.
    """

    ranges_m: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
    intervals_m: Sequence[float] = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
    axis: int = 0
    center: float = 0.0

    def __post_init__(self) -> None:
        if not self.ranges_m or not self.intervals_m:
            raise ValueError("grid must contain at least one range and one interval")
        if any(r <= 0.0 for r in self.ranges_m):
            raise ValueError("scanning ranges must be positive")
        if any(i <= 0.0 for i in self.intervals_m):
            raise ValueError("scanning intervals must be positive")


@dataclass(frozen=True)
class ConfigOutcome:
    """One grid point's solve."""

    range_m: float
    interval_m: float
    result: LocalizationResult

    @property
    def abs_mean_residual(self) -> float:
        """|weighted mean normalized residual| — the paper's criterion."""
        return abs(self.result.mean_residual)

    @property
    def mean_abs_residual(self) -> float:
        """Mean |normalized residual| — a direct data-dirtiness measure."""
        return self.result.solution.mean_abs_residual


@dataclass(frozen=True)
class CellRejection:
    """A grid cell that could not produce a solve, with the reason why.

    Reasons are coarse, stable categories (usable as metric labels):
    ``"too_few_reads"`` (the range window left < 3 reads),
    ``"degenerate_geometry"`` (unobservable/unsolvable configuration),
    and ``"solve_error"`` (any other :class:`ValueError` from the solve).
    """

    range_m: float
    interval_m: float
    reason: str


def _classify_rejection(error: ValueError) -> str:
    """Map a localization ``ValueError`` to a stable reason label.

    The localizer raises typed exceptions
    (:class:`repro.core.localizer.TooFewReadsError`,
    :class:`repro.core.localizer.DegenerateGeometryError`) for the two
    structured failure modes; anything else is a generic solve error.
    The labels are unchanged — dashboards keyed on them keep working.
    """
    if isinstance(error, TooFewReadsError):
        return "too_few_reads"
    if isinstance(error, DegenerateGeometryError):
        return "degenerate_geometry"
    return "solve_error"


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of the adaptive sweep.

    Attributes:
        position: average position of the selected estimates.
        reference_distance_m: average ``d_r`` of the selected estimates.
        outcomes: every grid point's solve, in sweep order.
        selected: indices into ``outcomes`` that passed selection.
    """

    position: np.ndarray
    reference_distance_m: float
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    selected: List[int] = field(default_factory=list)

    @property
    def best_outcome(self) -> ConfigOutcome:
        """The single grid point with the smallest |mean residual|."""
        return min(self.outcomes, key=lambda o: o.abs_mean_residual)


def _solve_cell(
    localizer: LionLocalizer,
    points: np.ndarray,
    profile: np.ndarray,
    segment_ids: np.ndarray | None,
    excludes: np.ndarray,
    cell: Tuple[float, float, int],
) -> ConfigOutcome | CellRejection:
    """Solve one (range, interval) grid cell from the shared preprocessed profile.

    Module-level (dispatched via :func:`functools.partial`) so the process
    backend can pickle it. A cell whose configuration cannot produce a
    solve maps to a :class:`CellRejection` carrying the reason rather than
    raising, keeping the sweep's skip-and-continue semantics on every
    backend while making rejections observable.
    """
    range_m, interval_m, row = cell
    try:
        result = localizer.locate(
            points,
            profile,
            segment_ids=segment_ids,
            exclude_mask=excludes[row],
            interval_m=interval_m,
            assume_preprocessed=True,
        )
    except ValueError as error:
        return CellRejection(range_m, interval_m, _classify_rejection(error))
    return ConfigOutcome(range_m, interval_m, result)


def _solve_cell_shared(
    localizer: LionLocalizer,
    specs: dict[str, SharedArraySpec | None],
    cell: Tuple[float, float, int],
) -> ConfigOutcome | CellRejection:
    """Process-backend variant of :func:`_solve_cell`.

    The chunk carries only shared-memory handles; the worker maps
    ``positions``/``profile``/``excludes`` (byte-exact, zero-copy, cached
    per process) instead of receiving them re-pickled with every cell.
    """
    arrays = attach_shared_arrays(specs)
    return _solve_cell(
        localizer,
        arrays["points"],
        arrays["profile"],
        arrays["segments"],
        arrays["excludes"],
        cell,
    )


def _fused_cells(
    localizer: LionLocalizer,
    points: np.ndarray,
    profile: np.ndarray,
    segments: np.ndarray | None,
    excludes: np.ndarray,
    cells: List[Tuple[float, float, int]],
) -> List[ConfigOutcome | CellRejection]:
    """Run the fused engine and wrap its per-cell results like the legacy path."""
    wrapped: List[ConfigOutcome | CellRejection] = []
    for (range_m, interval_m, _), result in zip(
        cells, fused_sweep(localizer, points, profile, segments, excludes, cells)
    ):
        if isinstance(result, ValueError):
            wrapped.append(
                CellRejection(range_m, interval_m, _classify_rejection(result))
            )
        else:
            wrapped.append(ConfigOutcome(range_m, interval_m, result))
    return wrapped


def _adaptive_localize_impl(
    localizer: LionLocalizer,
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    grid: ParameterGrid | None = None,
    segment_ids: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
    selection_quantile: float = 0.25,
    criterion: str = "abs_mean",
    executor: str | Executor | None = "serial",
    jobs: int | None = None,
    fused: bool | None = None,
) -> AdaptiveResult:
    """Run the localizer over the parameter grid and fuse the cleanest solves.

    The wrapped profile is preprocessed (unwrapped + smoothed) exactly
    once — preprocessing does not depend on the grid point — and the
    per-cell window masks for every scanning range are built in one
    vectorized pass. With the serial executor (the default) the grid is
    solved through the fused engine of :mod:`repro.core.sweep`: one
    preparation per range window, cached pair selection, and a single
    masked batch IRLS solve — bit-identical to the per-cell path, only
    faster. Pool executors keep the per-cell dispatch (cells are solved
    independently and collected in sweep order, so the result is
    identical on every backend); the process backend ships the shared
    arrays through ``multiprocessing.shared_memory`` instead of
    re-pickling them per chunk.

    Args:
        localizer: a configured :class:`LionLocalizer`.
        positions: scan positions, shape ``(n, 2)`` or ``(n, 3)``.
        wrapped_phase_rad: wrapped phases, shape ``(n,)``.
        grid: the sweep grid; defaults to the paper's evaluation ranges.
        segment_ids: optional per-read sweep ids (forwarded to the localizer).
        exclude_mask: reads excluded a priori (e.g. transit reads); the
            range window adds further exclusions per grid point.
        selection_quantile: fraction of grid points (by the criterion)
            whose estimates are averaged. The minimum-residual point is
            always included.
        criterion: ``"abs_mean"`` ranks by |weighted mean normalized
            residual| (the paper's description); ``"mean_abs"`` ranks by
            mean |normalized residual| (a direct dirtiness measure).
        executor: backend for dispatching grid cells — ``"serial"``,
            ``"thread"``, ``"process"``, or a prebuilt
            :class:`repro.parallel.Executor`.
        jobs: worker count for pool backends; defaults to the CLI
            ``--jobs`` value, ``LION_JOBS``, or the CPU count.
        fused: force the fused batch engine on (``True``) or off
            (``False``); ``None`` picks it automatically — fused for the
            serial executor, per-cell dispatch for pool backends.

    Raises:
        ValueError: if every grid point fails to produce a solve or the
            criterion is unknown.
    """
    if grid is None:
        grid = ParameterGrid()
    if not 0.0 < selection_quantile <= 1.0:
        raise ValueError(f"selection_quantile must be in (0, 1], got {selection_quantile}")
    if criterion not in ("abs_mean", "mean_abs"):
        raise ValueError(f"unknown criterion {criterion!r}")

    points = np.asarray(positions, dtype=float)
    base_exclude = (
        np.asarray(exclude_mask, dtype=bool)
        if exclude_mask is not None
        else np.zeros(points.shape[0], dtype=bool)
    )
    segments = np.asarray(segment_ids, dtype=int) if segment_ids is not None else None
    profile = localizer.preprocess_phase(
        np.asarray(wrapped_phase_rad, dtype=float), segment_ids=segments
    )

    # All range windows at once: (ranges, reads) broadcast of the
    # |coordinate - center| > range/2 test, OR-ed with the a-priori mask.
    ranges = np.asarray(grid.ranges_m, dtype=float)
    offsets = np.abs(points[:, grid.axis] - grid.center)
    excludes = base_exclude[np.newaxis, :] | (offsets[np.newaxis, :] > ranges[:, np.newaxis] / 2.0)

    cells: List[Tuple[float, float, int]] = [
        (float(range_m), float(interval_m), row)
        for row, range_m in enumerate(grid.ranges_m)
        for interval_m in grid.intervals_m
        if interval_m < range_m
    ]
    grid_size = len(grid.ranges_m) * len(grid.intervals_m)

    runner = get_executor(executor, jobs=jobs)
    if fused is None:
        fused = runner.name == "serial"
    with span("adaptive_sweep", cells=len(cells), criterion=criterion):
        if fused:
            raw = _fused_cells(localizer, points, profile, segments, excludes, cells)
        elif runner.name == "process":
            with SharedArrayBundle(
                points=points, profile=profile, segments=segments, excludes=excludes
            ) as bundle:
                solve = functools.partial(_solve_cell_shared, localizer, bundle.specs)
                raw = runner.map(solve, cells)
        else:
            solve = functools.partial(
                _solve_cell, localizer, points, profile, segments, excludes
            )
            raw = runner.map(solve, cells)
    outcomes = [result for result in raw if isinstance(result, ConfigOutcome)]
    rejections = [result for result in raw if isinstance(result, CellRejection)]

    if metrics_enabled():
        registry = get_registry()
        registry.counter("adaptive.cells_total", outcome="accepted").inc(len(outcomes))
        registry.counter(
            "adaptive.cells_total", outcome="skipped", reason="interval_ge_range"
        ).inc(grid_size - len(cells))
        for rejection in rejections:
            registry.counter(
                "adaptive.cells_total", outcome="rejected", reason=rejection.reason
            ).inc()
        score_histogram = registry.histogram(
            "adaptive.abs_mean_residual", buckets=RESIDUAL_BUCKETS_M
        )
        for outcome in outcomes:
            score_histogram.observe(outcome.abs_mean_residual)

    if not outcomes:
        raise ValueError("no grid configuration produced a valid localization")

    scores = [
        o.abs_mean_residual if criterion == "abs_mean" else o.mean_abs_residual
        for o in outcomes
    ]
    order = np.argsort(scores)
    keep = max(int(np.ceil(selection_quantile * len(outcomes))), 1)
    selected = [int(i) for i in order[:keep]]
    if metrics_enabled():
        get_registry().counter("adaptive.cells_selected_total").inc(len(selected))
    stacked = np.vstack([outcomes[i].result.position for i in selected])
    distances = np.array([outcomes[i].result.reference_distance_m for i in selected])
    return AdaptiveResult(
        position=stacked.mean(axis=0),
        reference_distance_m=float(distances.mean()),
        outcomes=outcomes,
        selected=selected,
    )


def adaptive_localize(
    localizer: LionLocalizer,
    positions: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    grid: ParameterGrid | None = None,
    segment_ids: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
    selection_quantile: float = 0.25,
    criterion: str = "abs_mean",
    executor: str | Executor | None = "serial",
    jobs: int | None = None,
    fused: bool | None = None,
) -> AdaptiveResult:
    """Deprecated entry point for the adaptive sweep.

    Use the ``"lion-adaptive"`` estimator from :mod:`repro.pipeline`
    instead; this shim forwards through the registry (identical results)
    and will be removed once downstream callers have migrated. See
    :func:`_adaptive_localize_impl` for the algorithm and argument
    documentation.
    """
    warnings.warn(
        "adaptive_localize() is deprecated; use "
        "repro.pipeline.estimate('lion-adaptive', request, config) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import pipeline

    if grid is None:
        grid = ParameterGrid()
    config = pipeline.AdaptiveLionConfig(
        dim=localizer.dim,
        wavelength_m=localizer.wavelength_m,
        method=localizer.method,
        interval_m=localizer.interval_m,
        positive_side=localizer.positive_side,
        smoothing_window=localizer.preprocess.smoothing_window,
        jump_threshold_rad=localizer.preprocess.jump_threshold_rad,
        hampel_window=localizer.preprocess.hampel_window,
        max_iterations=localizer.max_iterations,
        tolerance_m=localizer.tolerance_m,
        ranges_m=tuple(float(r) for r in grid.ranges_m),
        intervals_m=tuple(float(i) for i in grid.intervals_m),
        axis=grid.axis,
        center=grid.center,
        selection_quantile=selection_quantile,
        criterion=criterion,
        executor=executor if isinstance(executor, str) else "serial",
        jobs=jobs,
        fused=fused,
    )
    estimator = pipeline.create_estimator("lion-adaptive", config)
    if executor is not None and not isinstance(executor, str):
        estimator.runtime_executor = executor
    request = pipeline.EstimationRequest(
        positions=positions,
        phases_rad=wrapped_phase_rad,
        segment_ids=segment_ids,
        exclude_mask=exclude_mask,
    )
    return estimator.estimate(request).raw
