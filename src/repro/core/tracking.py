"""Tag tracking with a calibrated antenna — the conveyor application.

The evaluation's tag-localization experiments (Sec. V-B) invert the
calibration geometry: the antenna is fixed and *known* (ideally via its
calibrated phase center) while a tag rides a known-shape trajectory from
an unknown start. Because LION only sees relative geometry, locating the
tag's start is the same linear solve expressed in the *scan frame* — the
frame whose origin is the tag's (unknown) initial position, in which the
tag's displacements are known exactly from the encoder/belt speed.

``track_tag_start`` wraps that change of frame: it runs the localizer on
the displacement coordinates, obtains the antenna's position *in the scan
frame*, and subtracts it from the assumed antenna position to place the
scan frame (and hence the tag's start) in world coordinates. The error of
the result directly inherits any error in the assumed antenna position —
which is precisely why phase calibration matters (Fig. 13a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.localizer import LionLocalizer, LocalizationResult


@dataclass(frozen=True)
class TrackingResult:
    """Output of a tag-start localization.

    Attributes:
        initial_position: estimated tag start in world coordinates,
            shape ``(dim,)``.
        antenna_in_scan_frame: the underlying LION estimate (antenna
            position expressed relative to the tag start).
        localization: the full :class:`LocalizationResult` for diagnostics.
    """

    initial_position: np.ndarray
    antenna_in_scan_frame: np.ndarray
    localization: LocalizationResult


def track_tag_start(
    localizer: LionLocalizer,
    displacements: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    antenna_position: np.ndarray,
    segment_ids: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
    interval_m: float | None = None,
) -> TrackingResult:
    """Locate a moving tag's initial position with a known antenna.

    Args:
        localizer: a configured :class:`LionLocalizer`; its ``dim`` sets
            the answer dimension.
        displacements: known tag displacements from its start, shape
            ``(n, 2)`` or ``(n, 3)``, in time order (e.g. belt travel).
        wrapped_phase_rad: reported wrapped phases, shape ``(n,)``.
        antenna_position: the assumed antenna position — pass the
            *calibrated phase center* for full accuracy, or the physical
            center to see the uncalibrated error (Fig. 13a).
        segment_ids / exclude_mask / interval_m: forwarded to
            :meth:`LionLocalizer.locate`.

    Returns:
        The tag's initial world position and the underlying estimate.

    Raises:
        ValueError: on shape mismatches (propagated from the localizer)
            or an antenna position of the wrong dimension.
    """
    antenna = np.asarray(antenna_position, dtype=float)
    if antenna.shape[0] < localizer.dim:
        raise ValueError(
            f"antenna position has {antenna.shape[0]} axes; localizer needs {localizer.dim}"
        )
    result = localizer.locate(
        displacements,
        wrapped_phase_rad,
        segment_ids=segment_ids,
        exclude_mask=exclude_mask,
        interval_m=interval_m,
    )
    initial = antenna[: localizer.dim] - result.position
    return TrackingResult(
        initial_position=initial,
        antenna_in_scan_frame=result.position,
        localization=result,
    )
