"""String-keyed estimator registry.

The serving layer's core datum: a name (``"lion"``, ``"hologram"``, ...)
maps to an :class:`EstimatorSpec` bundling the typed config class and a
factory. Everything downstream — the CLI's ``--estimator`` flag, the
Monte-Carlo comparison harness, the figure runners — resolves methods by
name here, so adding a solver is one ``register_estimator`` call instead
of edits to every caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Type

from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import EstimationReport, EstimationRequest, Estimator

_REGISTRY: Dict[str, "EstimatorSpec"] = {}


@dataclass(frozen=True)
class EstimatorSpec:
    """One registry entry.

    Attributes:
        name: the registry key.
        summary: one-line human description (shown by ``lion estimators``).
        config_cls: the method's :class:`EstimatorConfig` subclass.
        factory: builds the estimator from a config instance.
        streaming: whether instances implement the incremental
            :class:`~repro.pipeline.contract.StreamingEstimator` facet
            (``ingest``/``ready``/``snapshot``/``reset``). Sessions of
            non-streaming estimators fall back to windowed re-solves.
    """

    name: str
    summary: str
    config_cls: Type[EstimatorConfig]
    factory: Callable[[EstimatorConfig], Estimator]
    streaming: bool = False


def register_estimator(
    name: str,
    config_cls: Type[EstimatorConfig],
    factory: Callable[[EstimatorConfig], Estimator],
    summary: str = "",
    streaming: bool = False,
) -> None:
    """Register a method under ``name``.

    Args:
        streaming: advertise the incremental
            :class:`~repro.pipeline.contract.StreamingEstimator` facet.

    Raises:
        ValueError: if the name is already taken (each estimator must be
            registered exactly once) or empty.
    """
    if not name:
        raise ValueError("estimator name must be non-empty")
    if name in _REGISTRY:
        raise ValueError(f"estimator {name!r} is already registered")
    _REGISTRY[name] = EstimatorSpec(
        name=name,
        summary=summary,
        config_cls=config_cls,
        factory=factory,
        streaming=streaming,
    )


def estimator_names() -> List[str]:
    """All registered names, sorted."""
    return sorted(_REGISTRY)


def list_estimators() -> Dict[str, str]:
    """Mapping of registered name -> one-line summary, sorted by name."""
    return {name: _REGISTRY[name].summary for name in sorted(_REGISTRY)}


def get_spec(name: str) -> EstimatorSpec:
    """Look up a registry entry.

    Raises:
        KeyError: for an unknown name (message lists the valid ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; registered: {estimator_names()}"
        ) from None


def resolve_config(
    name: str, config: EstimatorConfig | Mapping[str, Any] | None = None
) -> EstimatorConfig:
    """Normalize ``config`` into the method's typed config instance.

    Accepts the typed config itself, a plain dict (e.g. parsed from CLI
    JSON), or ``None`` for defaults.

    Raises:
        KeyError: for an unknown estimator name.
        TypeError: for a config of the wrong typed class.
        ValueError: for unknown dict keys.
    """
    spec = get_spec(name)
    if config is None:
        return spec.config_cls()
    if isinstance(config, EstimatorConfig):
        if not isinstance(config, spec.config_cls):
            raise TypeError(
                f"estimator {name!r} expects {spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        return config
    return spec.config_cls.from_dict(dict(config))


def supports_streaming(name: str) -> bool:
    """Whether ``name`` advertises the incremental streaming facet.

    Raises:
        KeyError: for an unknown estimator name.
    """
    return get_spec(name).streaming


def create_estimator(
    name: str, config: EstimatorConfig | Mapping[str, Any] | None = None
) -> Estimator:
    """Construct a registered estimator by name.

    Args:
        name: registry key (see :func:`estimator_names`).
        config: typed config, plain dict, or ``None`` for defaults.
    """
    spec = get_spec(name)
    return spec.factory(resolve_config(name, config))


def estimate(
    name: str,
    request: EstimationRequest,
    config: EstimatorConfig | Mapping[str, Any] | None = None,
) -> EstimationReport:
    """One-shot convenience: construct the estimator and run it."""
    return create_estimator(name, config).estimate(request)
