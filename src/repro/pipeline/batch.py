"""Batched estimation over the :mod:`repro.parallel` executors.

One estimator, many requests — the shape of a Monte-Carlo sweep or a
multi-tag inventory pass. The estimator is identified by registry name
and its config by the serialized dict (both picklable), so the process
backend can rebuild the estimator inside each worker; results come back
in request order on every backend.
"""

from __future__ import annotations

import functools
from typing import Any, Iterable, List, Mapping

from repro.parallel import Executor, get_executor
from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.pipeline.registry import estimate, resolve_config


def _estimate_one(
    name: str, config_payload: Mapping[str, Any], request: EstimationRequest
) -> EstimationReport:
    """Build the named estimator and run one request (picklable worker)."""
    return estimate(name, request, config_payload)


def estimate_many(
    name: str,
    requests: Iterable[EstimationRequest],
    config: EstimatorConfig | Mapping[str, Any] | None = None,
    executor: str | Executor | None = "serial",
    jobs: int | None = None,
) -> List[EstimationReport]:
    """Run one registered estimator over many requests.

    Args:
        name: registry name (see
            :func:`repro.pipeline.registry.estimator_names`).
        requests: the estimation requests, one report returned per
            request in the same order.
        config: typed config, plain dict, or ``None`` for defaults —
            resolved once up front so a bad config fails before any work
            is dispatched.
        executor: ``"serial"``, ``"thread"``, ``"process"``, or a
            prebuilt :class:`repro.parallel.Executor`.
        jobs: worker count for pool backends (see
            :func:`repro.parallel.resolve_jobs`).
    """
    payload = resolve_config(name, config).to_dict()
    runner = get_executor(executor, jobs=jobs)
    worker = functools.partial(_estimate_one, name, payload)
    return runner.map(worker, list(requests))
