"""Unified estimator pipeline: one contract, one registry, every method.

This package is the serving layer between the solvers (:mod:`repro.core`,
:mod:`repro.baselines`) and everything that runs them (experiments,
figures, CLI, Monte-Carlo). Callers build an
:class:`EstimationRequest`, pick a method by registry name, and get back
an :class:`EstimationReport` whose ``config_hash`` ties the result to the
exact method + settings that produced it:

>>> from repro import pipeline
>>> request = pipeline.EstimationRequest.from_scan(scan)   # doctest: +SKIP
>>> report = pipeline.estimate("lion", request, {"interval_m": 0.2})  # doctest: +SKIP

Importing this package registers every built-in estimator (see
:mod:`repro.pipeline.estimators` for the name table). The higher layers
import solver-adjacent helpers (``ParameterGrid``,
``hologram_likelihood``) from here rather than from the solver modules —
the import-hygiene gate enforces that direction.
"""

from repro.core.adaptive import ParameterGrid
from repro.baselines.hologram import hologram_likelihood

from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import (
    EstimationReport,
    EstimationRequest,
    Estimator,
    StreamingEstimator,
    build_report,
)
from repro.pipeline.registry import (
    EstimatorSpec,
    create_estimator,
    estimate,
    estimator_names,
    get_spec,
    list_estimators,
    register_estimator,
    resolve_config,
    supports_streaming,
)
from repro.pipeline.estimators import (
    AdaptiveLionConfig,
    AdaptiveLionEstimator,
    AngleConfig,
    AngleEstimator,
    HologramConfig,
    HologramEstimator,
    HyperbolaConfig,
    HyperbolaEstimator,
    LionConfig,
    LionEstimator,
    MultiAntennaConfig,
    MultiAntennaEstimator,
    MultiRefLionConfig,
    MultiRefLionEstimator,
    OnlineLionConfig,
    OnlineLionEstimator,
    ParabolaConfig,
    ParabolaEstimator,
)
from repro.pipeline.batch import estimate_many

__all__ = [
    # contract
    "EstimationRequest",
    "EstimationReport",
    "Estimator",
    "StreamingEstimator",
    "EstimatorConfig",
    "build_report",
    # registry
    "EstimatorSpec",
    "register_estimator",
    "create_estimator",
    "estimate",
    "estimate_many",
    "estimator_names",
    "list_estimators",
    "get_spec",
    "resolve_config",
    "supports_streaming",
    # estimator adapters + typed configs
    "LionConfig",
    "LionEstimator",
    "OnlineLionConfig",
    "OnlineLionEstimator",
    "MultiRefLionConfig",
    "MultiRefLionEstimator",
    "MultiAntennaConfig",
    "MultiAntennaEstimator",
    "AdaptiveLionConfig",
    "AdaptiveLionEstimator",
    "HyperbolaConfig",
    "HyperbolaEstimator",
    "ParabolaConfig",
    "ParabolaEstimator",
    "AngleConfig",
    "AngleEstimator",
    "HologramConfig",
    "HologramEstimator",
    # solver-adjacent helpers re-exported for the experiment layer
    "ParameterGrid",
    "hologram_likelihood",
]
