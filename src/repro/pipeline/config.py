"""Typed, serializable estimator configuration.

Every estimator in the registry declares its knobs as a frozen dataclass
deriving from :class:`EstimatorConfig`. The base class supplies the
dict round-trip the serving layer is built on:

* :meth:`EstimatorConfig.to_dict` produces a plain, JSON-safe dict
  (tuples become lists, numpy scalars become Python numbers), suitable
  for ``--estimator-config`` files and
  :func:`repro.obs.manifest.config_fingerprint` hashing;
* :meth:`EstimatorConfig.from_dict` rebuilds the typed config, rejecting
  unknown keys so a typo in a config file fails loudly instead of
  silently running with defaults.

``from_dict(to_dict(cfg)) == cfg`` holds for every registered config —
the property the provenance hash in :class:`repro.obs.RunManifest`
relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Type, TypeVar

import numpy as np

C = TypeVar("C", bound="EstimatorConfig")


def _jsonify(value: Any) -> Any:
    """Coerce a config field value into plain JSON-friendly types."""
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(v) for key, v in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    return value


def _typify(value: Any) -> Any:
    """Inverse of :func:`_jsonify` for the containers configs use.

    JSON has no tuple, so sequences come back as lists; configs declare
    tuple fields (hashable, frozen-dataclass friendly), so lists are
    converted back. Dict-valued fields are handled by the owning config's
    ``from_dict`` override (key types are field-specific).
    """
    if isinstance(value, list):
        return tuple(_typify(v) for v in value)
    return value


@dataclasses.dataclass(frozen=True)
class EstimatorConfig:
    """Base class for estimator configuration dataclasses.

    Subclasses are frozen dataclasses whose fields are all plain-data
    (numbers, strings, booleans, tuples, ``None``); that restriction is
    what makes the dict round-trip — and therefore config hashing and
    CLI JSON configs — total.
    """

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain JSON-safe dict (tuples become lists)."""
        return {
            f.name: _jsonify(getattr(self, f.name))
            for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls: Type[C], payload: Dict[str, Any]) -> C:
        """Rebuild a config from :meth:`to_dict` output (or CLI JSON).

        Missing keys fall back to the field defaults; unknown keys raise.

        Raises:
            ValueError: for keys that are not fields of this config.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown config keys for {cls.__name__}: {unknown}; "
                f"valid keys: {sorted(known)}"
            )
        return cls(**{key: _typify(value) for key, value in payload.items()})
