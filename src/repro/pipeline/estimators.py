"""Adapters wrapping every localization method behind the contract.

Each adapter pairs a typed config (:mod:`repro.pipeline.config`) with the
underlying solver from :mod:`repro.core` / :mod:`repro.baselines`, maps
the relevant :class:`EstimationRequest` fields onto that solver's native
signature, and normalizes the native result into an
:class:`EstimationReport` (keeping the native object on ``report.raw``).

Registered names:

========================  =====================================================
``lion``                  batch LION (:class:`repro.core.localizer.LionLocalizer`)
``lion-online``           streaming RLS LION (also exposes incremental ingest)
``lion-multiref``         per-run reference distances (separate sweeps / hops)
``lion-multiantenna``     differential hologram over one phase per antenna
``lion-adaptive``         LION + (range, interval) sweep selection
``hyperbola``             nonlinear TDoA fit baseline
``parabola``              quadratic phase-profile fit baseline (linear scans)
``angle``                 rotating-tag AoA baseline (turntable scans)
``hologram``              Tagoram-style differential augmented hologram
========================  =====================================================

Importing this module performs the registrations (it is imported by
``repro.pipeline``'s ``__init__``), each exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.adaptive import ParameterGrid, _adaptive_localize_impl
from repro.core.localizer import LionLocalizer, LocalizationResult, PreprocessConfig
from repro.core.multiantenna import _differential_hologram_impl
from repro.core.multiref import _locate_multireference_impl
from repro.core.online import OnlineLionLocalizer
from repro.baselines.angle import _locate_rotating_tag_impl
from repro.baselines.hologram import DifferentialHologram
from repro.baselines.hyperbola import _locate_hyperbola_impl
from repro.baselines.parabola import _locate_parabola_2d_impl
from repro.parallel import Executor
from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import (
    EstimationReport,
    EstimationRequest,
    build_report,
)
from repro.pipeline.registry import register_estimator


def _masked(request: EstimationRequest, *arrays: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Drop rows the request excludes (for methods without native masks).

    Methods that unwrap the filtered profile assume the excluded reads
    are edge trims (range windows, warm-up reads), not interior gaps
    larger than half a wavelength — the same continuity condition the
    methods already place on the scan itself.
    """
    if request.exclude_mask is None:
        return arrays
    keep = ~request.exclude_mask
    return tuple(array[keep] for array in arrays)


# ---------------------------------------------------------------------------
# LION batch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LionConfig(EstimatorConfig):
    """Config of the batch LION estimator (mirrors ``LionLocalizer``).

    Attributes:
        dim / wavelength_m / method / interval_m / positive_side /
        max_iterations / tolerance_m: as on
            :class:`repro.core.localizer.LionLocalizer`.
        smoothing_window / jump_threshold_rad / hampel_window: as on
            :class:`repro.core.localizer.PreprocessConfig`.
    """

    dim: int = 2
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    method: str = "wls"
    interval_m: float = 0.25
    positive_side: bool = True
    smoothing_window: int = 9
    jump_threshold_rad: float = float(np.pi)
    hampel_window: int = 0
    max_iterations: int = 20
    tolerance_m: float = 1e-6

    def build_localizer(self) -> LionLocalizer:
        """Construct the configured :class:`LionLocalizer`."""
        return LionLocalizer(
            dim=self.dim,
            wavelength_m=self.wavelength_m,
            method=self.method,
            interval_m=self.interval_m,
            positive_side=self.positive_side,
            preprocess=PreprocessConfig(
                smoothing_window=self.smoothing_window,
                jump_threshold_rad=self.jump_threshold_rad,
                hampel_window=self.hampel_window,
            ),
            max_iterations=self.max_iterations,
            tolerance_m=self.tolerance_m,
        )


class LionEstimator:
    """Batch LION through the unified contract."""

    name = "lion"

    def __init__(self, config: LionConfig) -> None:
        self.config = config
        self._localizer = config.build_localizer()
        # Serialized config + fingerprint are pure functions of the frozen
        # config; computed once on first report, then every report is a
        # dict copy instead of a re-serialize + re-hash (the serving
        # engine builds one report per request on the hot path).
        self._serialized_config: Dict[str, object] | None = None
        self._config_hash: str | None = None

    @property
    def localizer(self) -> LionLocalizer:
        """The configured core localizer (serving layer batches through it)."""
        return self._localizer

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Locate from one continuous scan (honors segments/exclusions)."""
        request.require("positions", "phases_rad")
        result = self._localizer.locate(
            request.positions,
            request.phases_rad,
            segment_ids=request.segment_ids,
            exclude_mask=request.exclude_mask,
            reference_index=request.reference_index,
        )
        return self.report(result)

    def report(
        self,
        result: LocalizationResult,
        diagnostics: Dict[str, object] | None = None,
    ) -> EstimationReport:
        """Wrap a core localization result in the contract report.

        Split from :meth:`estimate` so the serving engine
        (:mod:`repro.serve`) can run the solve through the fused batch path
        and still emit reports field-identical to the scalar path.
        ``diagnostics`` lets that engine pass the summary scalars it
        already computed batched (float32 pipeline) instead of re-deriving
        them per member from the :class:`Solution` properties.
        """
        if diagnostics is None:
            diagnostics = self._diagnostics(result)
        if self._serialized_config is None or self._config_hash is None:
            report = build_report(
                self.name,
                self.config,
                result.position,
                reference_distance_m=result.reference_distance_m,
                residuals=result.solution.normalized_residuals,
                diagnostics=diagnostics,
                raw=result,
            )
            self._serialized_config = dict(report.config)
            self._config_hash = report.config_hash
            return report
        return EstimationReport(
            estimator=self.name,
            position=np.asarray(result.position, dtype=float),
            config=dict(self._serialized_config),
            config_hash=self._config_hash,
            reference_distance_m=result.reference_distance_m,
            residuals=result.solution.normalized_residuals,
            diagnostics=diagnostics,
            raw=result,
        )

    @staticmethod
    def _diagnostics(result: LocalizationResult) -> Dict[str, object]:
        return {
            "mean_residual": float(result.mean_residual),
            "mean_abs_residual": float(result.solution.mean_abs_residual),
            "iterations": int(result.solution.iterations),
            "converged": bool(result.solution.converged),
            "recovered_axis": result.recovered_axis,
        }


# ---------------------------------------------------------------------------
# LION online / streaming
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OnlineLionConfig(EstimatorConfig):
    """Config of the streaming estimator (mirrors ``OnlineLionLocalizer``)."""

    dim: int = 2
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    pair_lag: int = 150
    forgetting: float = 1.0
    gate_threshold: float = 4.0
    positive_side: bool = True
    min_rows: int = 10

    def build_localizer(self) -> OnlineLionLocalizer:
        """Construct the configured :class:`OnlineLionLocalizer`."""
        return OnlineLionLocalizer(
            dim=self.dim,
            wavelength_m=self.wavelength_m,
            pair_lag=self.pair_lag,
            forgetting=self.forgetting,
            gate_threshold=self.gate_threshold,
            positive_side=self.positive_side,
            min_rows=self.min_rows,
        )


class OnlineLionEstimator:
    """Streaming LION: batch replay plus incremental ingest.

    :meth:`estimate` replays a whole request through a fresh streaming
    state (the batch contract). Streaming callers instead drive
    :meth:`ingest` read-by-read and call :meth:`snapshot` at any point
    — the ``ext_online`` figure measures convergence exactly this way.
    """

    name = "lion-online"

    def __init__(self, config: OnlineLionConfig) -> None:
        self.config = config
        self._localizer = config.build_localizer()

    def ingest(self, position: np.ndarray, wrapped_phase_rad: float) -> None:
        """Feed one read into the streaming state."""
        self._localizer.add_read(position, wrapped_phase_rad)

    def ready(self) -> bool:
        """Whether enough rows accumulated for an estimate."""
        return self._localizer.ready()

    def reset(self) -> None:
        """Clear the streaming state."""
        self._localizer.reset()

    def snapshot(self) -> EstimationReport:
        """Report the current streaming estimate without consuming state."""
        estimate = self._localizer.estimate()
        return build_report(
            self.name,
            self.config,
            estimate.position,
            reference_distance_m=estimate.reference_distance_m,
            diagnostics={
                "reads": int(estimate.reads),
                "rows": int(estimate.rows),
                "recovered_axis": estimate.recovered_axis,
            },
            raw=estimate,
        )

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Replay the request's reads in order and report the final state.

        The streaming unwrapper needs the full consecutive profile, so
        ``exclude_mask`` is not applied here; pre-trim the request if
        reads must be dropped.
        """
        request.require("positions", "phases_rad")
        self.reset()
        for position, phase in zip(request.positions, request.phases_rad):
            self.ingest(position, float(phase))
        return self.snapshot()


# ---------------------------------------------------------------------------
# LION multi-reference
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiRefLionConfig(EstimatorConfig):
    """Config of the multi-reference solver.

    Attributes:
        wavelengths_by_run: per-run wavelength overrides for
            frequency-hopped scans, keyed by run id; ``None`` uses
            ``wavelength_m`` for every run. (JSON keys are strings; they
            are normalized back to ints on construction.)
    """

    dim: int = 3
    interval_m: float = 0.25
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    wavelengths_by_run: Dict[int, float] | None = None
    smoothing_window: int = 9
    weighted: bool = True
    positive_side: bool = True

    def __post_init__(self) -> None:
        if self.wavelengths_by_run is not None:
            object.__setattr__(
                self,
                "wavelengths_by_run",
                {int(run): float(wl) for run, wl in self.wavelengths_by_run.items()},
            )


class MultiRefLionEstimator:
    """Multi-run LION (one reference distance per run)."""

    name = "lion-multiref"

    def __init__(self, config: MultiRefLionConfig) -> None:
        self.config = config

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Solve runs jointly; run labels come from ``run_ids`` (or
        ``segment_ids`` as a fallback)."""
        request.require("positions", "phases_rad")
        runs = request.run_ids if request.run_ids is not None else request.segment_ids
        if runs is None:
            raise ValueError(
                "lion-multiref needs run_ids (or segment_ids) labeling each read's run"
            )
        positions, phases, runs = _masked(
            request, request.positions, request.phases_rad, runs
        )
        wavelengths = (
            self.config.wavelengths_by_run
            if self.config.wavelengths_by_run is not None
            else self.config.wavelength_m
        )
        solution = _locate_multireference_impl(
            positions,
            phases,
            runs,
            dim=self.config.dim,
            interval_m=self.config.interval_m,
            wavelengths_m=wavelengths,
            smoothing_window=self.config.smoothing_window,
            weighted=self.config.weighted,
            positive_side=self.config.positive_side,
        )
        return build_report(
            self.name,
            self.config,
            solution.position,
            residuals=solution.residuals,
            diagnostics={
                "iterations": int(solution.iterations),
                "run_count": len(solution.reference_distances),
                "reference_distances": {
                    str(run): float(d)
                    for run, d in sorted(solution.reference_distances.items())
                },
            },
            raw=solution,
        )


# ---------------------------------------------------------------------------
# LION multi-antenna (differential hologram over antenna anchors)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiAntennaConfig(EstimatorConfig):
    """Config of the multi-antenna differential grid search."""

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    grid_size_m: float = 0.004


class MultiAntennaEstimator:
    """Static-tag localization from one phase per (calibrated) antenna."""

    name = "lion-multiantenna"

    def __init__(self, config: MultiAntennaConfig) -> None:
        self.config = config

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Grid-search ``bounds``; ``positions`` are the antenna centers."""
        request.require("positions", "phases_rad", "bounds")
        result = _differential_hologram_impl(
            request.positions,
            request.phases_rad,
            request.bounds,
            grid_size_m=self.config.grid_size_m,
            offset_corrections_rad=request.offset_corrections_rad,
            wavelength_m=self.config.wavelength_m,
        )
        return build_report(
            self.name,
            self.config,
            result.position,
            diagnostics={
                "likelihood": float(result.likelihood),
                "cell_count": int(result.cell_count),
            },
            raw=result,
        )


# ---------------------------------------------------------------------------
# LION adaptive sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveLionConfig(LionConfig):
    """Config of the adaptive (range, interval) sweep around LION.

    Extends :class:`LionConfig` with the grid and selection knobs of
    :func:`repro.core.adaptive.adaptive_localize`. ``executor`` names a
    :mod:`repro.parallel` backend for fanning grid cells out. ``fused``
    forces the fused batch sweep on or off; ``None`` keeps the default
    (fused on the serial backend, per-cell dispatch otherwise).
    """

    ranges_m: Tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
    intervals_m: Tuple[float, ...] = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
    axis: int = 0
    center: float = 0.0
    selection_quantile: float = 0.25
    criterion: str = "abs_mean"
    executor: str = "serial"
    jobs: int | None = None
    fused: bool | None = None

    def build_grid(self) -> ParameterGrid:
        """Construct the configured :class:`ParameterGrid`."""
        return ParameterGrid(
            ranges_m=self.ranges_m,
            intervals_m=self.intervals_m,
            axis=self.axis,
            center=self.center,
        )


class AdaptiveLionEstimator:
    """LION with the paper's adaptive parameter selection (Sec. IV-C1).

    Attributes:
        runtime_executor: optional prebuilt :class:`repro.parallel.Executor`
            overriding the config's backend name (executors are live
            objects and therefore not part of the serializable config).
    """

    name = "lion-adaptive"

    def __init__(self, config: AdaptiveLionConfig) -> None:
        self.config = config
        self._localizer = config.build_localizer()
        self.runtime_executor: Executor | None = None

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Sweep the grid and fuse the lowest-|mean residual| solves."""
        request.require("positions", "phases_rad")
        result = _adaptive_localize_impl(
            self._localizer,
            request.positions,
            request.phases_rad,
            grid=self.config.build_grid(),
            segment_ids=request.segment_ids,
            exclude_mask=request.exclude_mask,
            selection_quantile=self.config.selection_quantile,
            criterion=self.config.criterion,
            executor=self.runtime_executor or self.config.executor,
            jobs=self.config.jobs,
            fused=self.config.fused,
        )
        best = result.best_outcome
        return build_report(
            self.name,
            self.config,
            result.position,
            reference_distance_m=result.reference_distance_m,
            residuals=best.result.solution.normalized_residuals,
            diagnostics={
                "grid_outcomes": len(result.outcomes),
                "selected": len(result.selected),
                "best_range_m": float(best.range_m),
                "best_interval_m": float(best.interval_m),
                "best_abs_mean_residual": float(best.abs_mean_residual),
            },
            raw=result,
        )


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HyperbolaConfig(EstimatorConfig):
    """Config of the hyperbola/TDoA baseline."""

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    dim: int | None = None


class HyperbolaEstimator:
    """Nonlinear distance-difference fit baseline."""

    name = "hyperbola"

    def __init__(self, config: HyperbolaConfig) -> None:
        self.config = config

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Fit hyperbolas over the (mask-filtered) continuous scan."""
        request.require("positions", "phases_rad")
        positions, phases = _masked(request, request.positions, request.phases_rad)
        result = _locate_hyperbola_impl(
            positions,
            phases,
            initial_guess=request.initial_guess,
            wavelength_m=self.config.wavelength_m,
            dim=self.config.dim,
        )
        return build_report(
            self.name,
            self.config,
            result.position,
            diagnostics={
                "cost": float(result.cost),
                "iterations": int(result.iterations),
                "converged": bool(result.converged),
            },
            raw=result,
        )


@dataclass(frozen=True)
class ParabolaConfig(EstimatorConfig):
    """Config of the parabola-fit baseline (linear scans only).

    Attributes:
        scan_axis: which position coordinate is the scan coordinate.
    """

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    positive_side: bool = True
    scan_axis: int = 0


class ParabolaEstimator:
    """Quadratic phase-profile fit; position is in the scan frame."""

    name = "parabola"

    def __init__(self, config: ParabolaConfig) -> None:
        self.config = config

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Fit the (mask-filtered) profile along ``scan_axis``."""
        request.require("positions", "phases_rad")
        positions, phases = _masked(request, request.positions, request.phases_rad)
        result = _locate_parabola_2d_impl(
            positions[:, self.config.scan_axis],
            phases,
            wavelength_m=self.config.wavelength_m,
            positive_side=self.config.positive_side,
        )
        return build_report(
            self.name,
            self.config,
            result.position,
            diagnostics={
                "curvature": float(result.curvature),
                "rms_residual_rad": float(result.rms_residual_rad),
            },
            raw=result,
        )


@dataclass(frozen=True)
class AngleConfig(EstimatorConfig):
    """Config of the rotating-tag AoA baseline (turntable scans only)."""

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    initial_distance_m: float = 1.0


class AngleEstimator:
    """Rotating-tag AoA fit; position is in the turntable plane frame."""

    name = "angle"

    def __init__(self, config: AngleConfig) -> None:
        self.config = config

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Fit azimuth + distance from ``angles_rad`` and ``radius_m``."""
        request.require("angles_rad", "phases_rad", "radius_m")
        angles, phases = _masked(request, request.angles_rad, request.phases_rad)
        result = _locate_rotating_tag_impl(
            angles,
            phases,
            radius_m=request.radius_m,
            wavelength_m=self.config.wavelength_m,
            initial_distance_m=self.config.initial_distance_m,
        )
        return build_report(
            self.name,
            self.config,
            result.position,
            reference_distance_m=float(result.center_distance_m),
            diagnostics={
                "azimuth_rad": float(result.azimuth_rad),
                "converged": bool(result.converged),
            },
            raw=result,
        )


@dataclass(frozen=True)
class HologramConfig(EstimatorConfig):
    """Config of the DAH baseline (mirrors ``DifferentialHologram``)."""

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    grid_size_m: float = 0.001
    augmentation_rounds: int = 1
    chunk_cells: int = 200_000

    def build_hologram(self) -> DifferentialHologram:
        """Construct the configured :class:`DifferentialHologram`."""
        return DifferentialHologram(
            wavelength_m=self.wavelength_m,
            grid_size_m=self.grid_size_m,
            augmentation_rounds=self.augmentation_rounds,
            chunk_cells=self.chunk_cells,
        )


class HologramEstimator:
    """Tagoram-style differential augmented hologram grid search."""

    name = "hologram"

    def __init__(self, config: HologramConfig) -> None:
        self.config = config
        self._hologram = config.build_hologram()

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Search ``bounds`` over the (mask-filtered) reads."""
        request.require("positions", "phases_rad", "bounds")
        positions, phases = _masked(request, request.positions, request.phases_rad)
        result = self._hologram.locate(
            positions,
            phases,
            request.bounds,
            reference_index=(
                request.reference_index if request.reference_index is not None else 0
            ),
        )
        return build_report(
            self.name,
            self.config,
            result.position,
            diagnostics={
                "likelihood": float(result.likelihood),
                "cell_count": int(result.cell_count),
                "grid_shape": list(result.grid_shape),
            },
            raw=result,
        )


# ---------------------------------------------------------------------------
# Registrations (exactly one per method)
# ---------------------------------------------------------------------------

register_estimator(
    "lion", LionConfig, LionEstimator,
    summary="batch LION linear localization (paper Sec. IV)",
)
register_estimator(
    "lion-online", OnlineLionConfig, OnlineLionEstimator,
    summary="streaming RLS LION with incremental ingest",
    streaming=True,
)
register_estimator(
    "lion-multiref", MultiRefLionConfig, MultiRefLionEstimator,
    summary="multi-run LION: one reference distance per sweep/hop block",
)
register_estimator(
    "lion-multiantenna", MultiAntennaConfig, MultiAntennaEstimator,
    summary="differential grid search over one phase per antenna (Fig. 20)",
)
register_estimator(
    "lion-adaptive", AdaptiveLionConfig, AdaptiveLionEstimator,
    summary="LION with adaptive (range, interval) selection (Sec. IV-C1)",
)
register_estimator(
    "hyperbola", HyperbolaConfig, HyperbolaEstimator,
    summary="nonlinear hyperbola/TDoA baseline",
)
register_estimator(
    "parabola", ParabolaConfig, ParabolaEstimator,
    summary="parabola phase-profile fit baseline (2D, linear scans)",
)
register_estimator(
    "angle", AngleConfig, AngleEstimator,
    summary="rotating-tag AoA baseline (turntable scans)",
)
register_estimator(
    "hologram", HologramConfig, HologramEstimator,
    summary="Tagoram differential augmented hologram baseline",
)
