"""The request/report contract every estimator serves.

One scan, many methods: the paper's evaluation (Sec. V) runs LION and
four baselines over identical scan data, and deployable systems
(RF-CHORD-style) need a uniform serving interface over interchangeable
solvers. :class:`EstimationRequest` is the superset of inputs any
registered method consumes; :class:`EstimationReport` is the common
output — estimate, residuals, diagnostics and the serialized config that
produced it (hashable into a :class:`repro.obs.RunManifest`).

Methods validate the *subset* of request fields they need and ignore the
rest, so one request built from a scan can be replayed through every
registered estimator (the cross-estimator golden test does exactly
that).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.obs.manifest import config_fingerprint
from repro.pipeline.config import EstimatorConfig

Bounds = Tuple[float, float]


def _as_optional_array(value: Any, dtype: type) -> np.ndarray | None:
    if value is None:
        return None
    return np.asarray(value, dtype=dtype)


@dataclass(frozen=True)
class EstimationRequest:
    """Inputs for one localization, the superset across all methods.

    Attributes:
        positions: known tag positions (trajectory-based methods) or
            antenna centers (``lion-multiantenna``), shape ``(n, 2|3)``.
        phases_rad: wrapped phases, one per row of ``positions`` (for
            ``lion-multiantenna``: one averaged phase per antenna).
        segment_ids: per-read sweep labels of a multi-line scan.
        exclude_mask: reads to exclude (e.g. transit moves).
        run_ids: independent-datum labels for ``lion-multiref``
            (separate sweeps, frequency-hop blocks). Falls back to
            ``segment_ids`` when omitted.
        angles_rad: turntable angle per read (``angle`` method only).
        radius_m: turntable radius (``angle`` method only).
        bounds: per-axis ``(low, high)`` search bounds for grid methods
            (``hologram``, ``lion-multiantenna``).
        initial_guess: optimizer start for iterative methods.
        offset_corrections_rad: per-antenna phase-offset corrections
            (``lion-multiantenna`` only).
        reference_index: Eq. (6) reference read override (``lion``,
            ``hologram``).
        antennas: registry antenna names (``lion-multiantenna`` only).
            When serving is wired to a :mod:`repro.calib` store, the
            resolver fills ``positions`` / ``offset_corrections_rad``
            from the named antennas' latest committed calibrations;
            explicitly provided arrays always win.
    """

    positions: np.ndarray | None = None
    phases_rad: np.ndarray | None = None
    segment_ids: np.ndarray | None = None
    exclude_mask: np.ndarray | None = None
    run_ids: np.ndarray | None = None
    angles_rad: np.ndarray | None = None
    radius_m: float | None = None
    bounds: Tuple[Bounds, ...] | None = None
    initial_guess: np.ndarray | None = None
    offset_corrections_rad: np.ndarray | None = None
    reference_index: int | None = None
    antennas: Tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "positions", _as_optional_array(self.positions, float))
        object.__setattr__(self, "phases_rad", _as_optional_array(self.phases_rad, float))
        object.__setattr__(self, "segment_ids", _as_optional_array(self.segment_ids, int))
        object.__setattr__(self, "exclude_mask", _as_optional_array(self.exclude_mask, bool))
        object.__setattr__(self, "run_ids", _as_optional_array(self.run_ids, int))
        object.__setattr__(self, "angles_rad", _as_optional_array(self.angles_rad, float))
        object.__setattr__(
            self, "initial_guess", _as_optional_array(self.initial_guess, float)
        )
        object.__setattr__(
            self,
            "offset_corrections_rad",
            _as_optional_array(self.offset_corrections_rad, float),
        )
        if self.bounds is not None:
            object.__setattr__(
                self,
                "bounds",
                tuple((float(low), float(high)) for low, high in self.bounds),
            )
        if self.antennas is not None:
            object.__setattr__(
                self, "antennas", tuple(str(name) for name in self.antennas)
            )

    @classmethod
    def from_scan(
        cls,
        scan: Any,
        bounds: Sequence[Bounds] | None = None,
        **overrides: Any,
    ) -> "EstimationRequest":
        """Build a request from a scan-like object.

        Accepts anything exposing ``positions`` and ``phases`` (and
        optionally ``segment_ids`` / ``exclude_mask``), such as
        :class:`repro.datasets.ScanData` — duck-typed so the contract
        layer stays independent of the dataset layer.

        Args:
            scan: the scan-like object.
            bounds: optional search bounds for grid methods.
            **overrides: any other request field (e.g. ``run_ids``).
        """
        fields: Dict[str, Any] = {
            "positions": scan.positions,
            "phases_rad": scan.phases,
            "segment_ids": getattr(scan, "segment_ids", None),
            "exclude_mask": getattr(scan, "exclude_mask", None),
            "bounds": tuple(bounds) if bounds is not None else None,
        }
        fields.update(overrides)
        return cls(**fields)

    def fingerprint(self) -> str:
        """Content digest of every request field, for result caching.

        Two requests with equal field *values* (array contents, not object
        identity) share a fingerprint, so the serving layer
        (:mod:`repro.serve`) can key its LRU result cache on
        ``(estimator, config_hash, request.fingerprint())`` and serve
        repeated scans without re-solving. Arrays are digested over shape,
        dtype, and bytes; scalars over their ``repr``.

        The digest is computed once and cached on the request — the
        dataclass is frozen and its array fields are never mutated by any
        consumer (the serve engine, session re-solves, and the batched
        prepare all treat requests as immutable), so the fingerprint is
        stable for the object's lifetime. Serving paths call this on
        every cache lookup and every session re-solve; without the cache
        it was the second-largest fixed cost of ``ServeEngine.submit``.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        hasher = hashlib.blake2b(digest_size=16)
        for name in (
            "positions",
            "phases_rad",
            "segment_ids",
            "exclude_mask",
            "run_ids",
            "angles_rad",
            "initial_guess",
            "offset_corrections_rad",
        ):
            value = getattr(self, name)
            if value is None:
                hasher.update(b"\x00")
            else:
                array = np.ascontiguousarray(value)
                hasher.update(repr((name, array.shape, array.dtype.str)).encode())
                hasher.update(array.tobytes())
        hasher.update(
            repr(
                (self.radius_m, self.bounds, self.reference_index, self.antennas)
            ).encode()
        )
        digest = hasher.hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def require(self, *names: str) -> None:
        """Raise if any of the named request fields is missing.

        Adapters call this first, so "this method needs bounds" reads as
        one uniform error instead of nine ad-hoc ones.

        Raises:
            ValueError: naming the missing fields.
        """
        missing = [name for name in names if getattr(self, name) is None]
        if missing:
            raise ValueError(f"request is missing required fields: {missing}")


@dataclass(frozen=True)
class EstimationReport:
    """Output of one estimator run, uniform across methods.

    Attributes:
        estimator: registry name of the method that produced this.
        position: the estimate, shape ``(dim,)`` (method-specific frame
            for scan-frame methods like ``parabola``/``angle``).
        config: the serialized (:meth:`EstimatorConfig.to_dict`) config.
        config_hash: :func:`repro.obs.manifest.config_fingerprint` of
            ``{"estimator": name, **config}`` — the provenance key that
            ties a result to the exact method + settings that made it.
        reference_distance_m: estimated reference distance ``d_r`` for
            methods that carry one, else ``None``.
        residuals: per-equation/per-row residuals when the method
            produces them, else ``None``.
        diagnostics: method-specific scalars (mean residual, likelihood,
            iteration counts, ...), all plain JSON-safe values.
        raw: the method's native result object, for callers needing the
            full solver output (systems, holograms, recovery details).
    """

    estimator: str
    position: np.ndarray
    config: Dict[str, Any]
    config_hash: str
    reference_distance_m: float | None = None
    residuals: np.ndarray | None = None
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    def manifest_config(self) -> Dict[str, Any]:
        """The dict whose fingerprint is :attr:`config_hash`.

        Feed this as ``config=`` to :func:`repro.obs.collect_manifest`
        so a run manifest's config hash identifies the estimator setup.
        """
        return {"estimator": self.estimator, **self.config}


def build_report(
    name: str,
    config: EstimatorConfig,
    position: np.ndarray,
    reference_distance_m: float | None = None,
    residuals: np.ndarray | None = None,
    diagnostics: Dict[str, Any] | None = None,
    raw: Any = None,
) -> EstimationReport:
    """Assemble an :class:`EstimationReport`, stamping the config hash."""
    serialized = config.to_dict()
    return EstimationReport(
        estimator=name,
        position=np.asarray(position, dtype=float),
        config=serialized,
        config_hash=config_fingerprint({"estimator": name, **serialized}),
        reference_distance_m=reference_distance_m,
        residuals=residuals,
        diagnostics=dict(diagnostics or {}),
        raw=raw,
    )


@runtime_checkable
class Estimator(Protocol):
    """The protocol every registered estimator implements.

    An estimator is constructed from its typed config (see
    :func:`repro.pipeline.registry.create_estimator`) and exposes one
    method: :meth:`estimate`. Streaming methods may offer additional
    incremental entry points (``lion-online``), but batch estimation
    through this protocol is always available.
    """

    name: str
    config: EstimatorConfig

    def estimate(self, request: EstimationRequest) -> EstimationReport:
        """Run the method on ``request`` and report the estimate."""
        ...


@runtime_checkable
class StreamingEstimator(Estimator, Protocol):
    """The incremental facet a streaming-capable estimator adds.

    Estimators that can fold reads in one at a time (``lion-online``)
    implement this on top of the batch :class:`Estimator` contract, and
    advertise it in the registry (``EstimatorSpec.streaming``). The
    session layer (:mod:`repro.stream`) drives :meth:`ingest` per read
    and :meth:`snapshot` for fast-path estimates; estimators *without*
    this facet still serve sessions through the windowed-re-solve
    fallback (a periodic batch :meth:`Estimator.estimate` over the
    sliding window), so streaming support is an optimization, never a
    requirement.
    """

    def ingest(self, position: np.ndarray, wrapped_phase_rad: float) -> None:
        """Fold one read (known position + wrapped phase) into the state."""
        ...

    def ready(self) -> bool:
        """Whether enough state has accumulated for :meth:`snapshot`."""
        ...

    def snapshot(self) -> EstimationReport:
        """Report the current incremental estimate without consuming state."""
        ...

    def reset(self) -> None:
        """Clear the incremental state (new target / new session)."""
        ...
