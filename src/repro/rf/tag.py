"""Passive UHF RFID tag model.

A tag contributes the ``theta_T`` term of the Eq. (1) phase model — a
constant phase rotation set by its reflection characteristics — plus a
backscatter power factor that shapes simulated RSSI. Fig. 3 of the paper
shows that different tag units of the same model carry visibly different
``theta_T``; the default constructor therefore draws the offset per unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import TWO_PI


@dataclass(frozen=True)
class Tag:
    """A passive tag with its intrinsic phase offset.

    Attributes:
        epc: tag identifier, used to key read records.
        phase_offset_rad: the tag-side phase rotation ``theta_T`` of
            Eq. (1), radians in ``[0, 2*pi)``.
        backscatter_loss_db: power lost in the backscatter modulation,
            applied to simulated RSSI only.
    """

    epc: str = "E200-0000-0000-0000"
    phase_offset_rad: float = 0.0
    backscatter_loss_db: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.phase_offset_rad < TWO_PI:
            from repro.signalproc.wrapping import wrap_phase

            object.__setattr__(
                self, "phase_offset_rad", float(wrap_phase(self.phase_offset_rad))
            )

    @staticmethod
    def random(rng: np.random.Generator, epc: str = "") -> "Tag":
        """Draw a tag with a uniformly random hardware phase offset.

        Mirrors the Fig. 3 observation that nominally identical tags show
        distinct phase offsets.
        """
        offset = float(rng.uniform(0.0, TWO_PI))
        label = epc or f"E200-{rng.integers(0, 16**4):04X}-{rng.integers(0, 16**4):04X}"
        return Tag(epc=label, phase_offset_rad=offset)
