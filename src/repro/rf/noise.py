"""Phase-noise models for the simulated channel.

The paper's own simulations (Sec. III-A) perturb phase with Gaussian noise
N(0, 0.1 rad). Its hardware experiments additionally show noise growing
when the tag leaves the antenna's main beam (Sec. V-E) and when depth
increases (Sec. V-C). :class:`SnrScaledPhaseNoise` captures both: the
phase-noise standard deviation of a coherent receiver scales inversely
with the root of the received SNR, which falls with path loss and beam
gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.constants import DEFAULT_PHASE_NOISE_STD_RAD


class PhaseNoiseModel(Protocol):
    """Anything that can draw a phase perturbation for a read."""

    def sample(
        self, rng: np.random.Generator, distance_m: float, relative_gain: float
    ) -> float:
        """Return one phase-noise draw in radians."""
        ...


@dataclass(frozen=True)
class NoPhaseNoise:
    """Ideal noiseless channel; useful for exactness tests."""

    def sample(
        self, rng: np.random.Generator, distance_m: float, relative_gain: float
    ) -> float:
        return 0.0


@dataclass(frozen=True)
class GaussianPhaseNoise:
    """Constant-variance Gaussian phase noise, the paper's simulation model.

    Attributes:
        std_rad: standard deviation in radians (paper default 0.1).
    """

    std_rad: float = DEFAULT_PHASE_NOISE_STD_RAD

    def __post_init__(self) -> None:
        if self.std_rad < 0.0:
            raise ValueError(f"noise std must be non-negative, got {self.std_rad}")

    def sample(
        self, rng: np.random.Generator, distance_m: float, relative_gain: float
    ) -> float:
        if self.std_rad == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.std_rad))


@dataclass(frozen=True)
class BurstyPhaseNoise:
    """A base noise model plus occasional large outliers.

    Real readers in busy RF environments occasionally report wildly wrong
    phases (tag collisions, interfering readers, fading dips). Each read
    independently suffers an extra uniform perturbation with probability
    ``burst_probability``. Outlier magnitude is capped below pi so the
    unwrapping stage survives; what the bursts stress is the *solver*,
    which is exactly the paper's argument for residual-weighted least
    squares (Fig. 15).

    Attributes:
        base: the underlying continuous noise model.
        burst_probability: per-read probability of an outlier.
        burst_magnitude_rad: outliers are uniform on
            ``[-burst_magnitude_rad, +burst_magnitude_rad]``.
    """

    base: PhaseNoiseModel
    burst_probability: float = 0.05
    burst_magnitude_rad: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError(
                f"burst probability must be in [0, 1], got {self.burst_probability}"
            )
        if not 0.0 < self.burst_magnitude_rad < np.pi:
            raise ValueError(
                "burst magnitude must be in (0, pi) to keep unwrapping sound, "
                f"got {self.burst_magnitude_rad}"
            )

    def sample(
        self, rng: np.random.Generator, distance_m: float, relative_gain: float
    ) -> float:
        value = self.base.sample(rng, distance_m, relative_gain)
        if self.burst_probability > 0.0 and rng.random() < self.burst_probability:
            value += float(
                rng.uniform(-self.burst_magnitude_rad, self.burst_magnitude_rad)
            )
        return value


@dataclass(frozen=True)
class SnrScaledPhaseNoise:
    """Gaussian phase noise whose sigma grows with path loss and off-beam gain.

    The std at reference conditions (distance ``reference_distance_m`` on
    boresight) is ``base_std_rad``; elsewhere it scales as::

        sigma = base_std_rad * (d / d_ref) / sqrt(relative_gain)

    which is the 1/sqrt(SNR) law with SNR proportional to
    ``gain / d**2`` (one-way; the two-way exponent only changes constants
    absorbed into ``base_std_rad``).

    Attributes:
        base_std_rad: sigma at the reference point, radians.
        reference_distance_m: distance at which sigma equals the base.
        max_std_rad: safety cap so far-off-beam reads stay usable.
    """

    base_std_rad: float = DEFAULT_PHASE_NOISE_STD_RAD
    reference_distance_m: float = 0.8
    max_std_rad: float = 1.2

    def __post_init__(self) -> None:
        if self.base_std_rad < 0.0:
            raise ValueError(f"noise std must be non-negative, got {self.base_std_rad}")
        if self.reference_distance_m <= 0.0:
            raise ValueError("reference distance must be positive")
        if self.max_std_rad < self.base_std_rad:
            raise ValueError("max_std_rad must be at least base_std_rad")

    def sigma(self, distance_m: float, relative_gain: float) -> float:
        """Phase-noise sigma for given distance and relative beam gain."""
        if distance_m <= 0.0:
            return self.base_std_rad
        gain = max(relative_gain, 1e-6)
        scale = (distance_m / self.reference_distance_m) / np.sqrt(gain)
        return float(min(self.base_std_rad * scale, self.max_std_rad))

    def sample(
        self, rng: np.random.Generator, distance_m: float, relative_gain: float
    ) -> float:
        sigma = self.sigma(distance_m, relative_gain)
        if sigma == 0.0:
            return 0.0
        return float(rng.normal(0.0, sigma))
