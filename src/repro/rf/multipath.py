"""Image-source multipath model.

Real environments add reflected copies of the backscatter signal to the
line-of-sight path. The classic image-source construction models a flat
reflector (wall, floor, metal shelf) as a virtual antenna mirrored across
the reflecting plane: the reflected path antenna -> wall -> tag has the
same length as the straight path image -> tag.

Because the line-of-sight amplitude decays with distance while a fixed
reflector's contribution decays with its own (longer but less
depth-sensitive) path, the *relative* multipath power grows with depth.
That is the mechanism behind Fig. 14(b), where the hologram baseline
degrades sharply beyond 1.4 m while LION's weighting holds up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array


@dataclass(frozen=True)
class Reflector:
    """A point image source with a reflection coefficient.

    Attributes:
        image_position: position of the mirrored (virtual) antenna, world
            coordinates. For a wall, use :class:`WallReflector` which
            computes this from the plane.
        amplitude: linear amplitude reflection coefficient in ``[0, 1]``
            applied on top of free-space loss along the reflected path.
        phase_shift_rad: extra phase picked up at the bounce (pi for a
            perfect conductor).
    """

    image_position: Tuple[float, float, float]
    amplitude: float = 0.3
    phase_shift_rad: float = np.pi

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")

    def image_array(self) -> np.ndarray:
        """Image position as a ``(3,)`` float array."""
        return as_point_array(self.image_position, dim=3)

    def path_length(self, tag_position: ArrayLike) -> float:
        """One-way length of the reflected path to ``tag_position``."""
        tag = as_point_array(tag_position, dim=3)
        return float(np.linalg.norm(tag - self.image_array()))


@dataclass(frozen=True)
class WallReflector:
    """A flat reflecting plane described by a point and unit normal.

    Turn into a :class:`Reflector` for a given antenna position with
    :meth:`image_for`.
    """

    point_on_plane: Tuple[float, float, float]
    normal: Tuple[float, float, float]
    amplitude: float = 0.3
    phase_shift_rad: float = np.pi

    def __post_init__(self) -> None:
        n = as_point_array(self.normal, dim=3)
        if float(np.linalg.norm(n)) == 0.0:
            raise ValueError("wall normal must be non-zero")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")

    def image_for(self, antenna_position: ArrayLike) -> Reflector:
        """Mirror ``antenna_position`` across the wall plane."""
        p = as_point_array(antenna_position, dim=3)
        q = as_point_array(self.point_on_plane, dim=3)
        n = as_point_array(self.normal, dim=3)
        n = n / np.linalg.norm(n)
        image = p - 2.0 * float(np.dot(p - q, n)) * n
        return Reflector(
            image_position=tuple(image),
            amplitude=self.amplitude,
            phase_shift_rad=self.phase_shift_rad,
        )


def multipath_components(
    reflectors: Sequence[Reflector],
    tag_position: ArrayLike,
    wavelength_m: float,
    los_distance_m: float,
    los_gain: float = 1.0,
    departure_gains: "Sequence[float] | None" = None,
) -> complex:
    """Sum of complex multipath contributions for a round-trip backscatter link.

    A backscatter round trip through one reflector has three echo paths:

    * two **mixed** paths (LoS out / reflected back, and its mirror), each
      of amplitude ``sqrt(g) * a / (d * L)`` and one-way length ``d + L``
      — these dominate, being only one bounce down from the LoS term
      ``g / d^2``;
    * one **double-bounce** path of amplitude ``(a / L)^2`` and one-way
      length ``2 L`` — usually negligible but kept for completeness.

    Here ``d`` is the LoS distance, ``L`` the one-way reflected path
    length (image source to tag), ``a`` the reflection amplitude, ``g``
    the antenna's LoS beam gain, and each bounce adds the reflector's
    phase shift ``s``.

    The antenna is directional: the echo's antenna-side leg departs toward
    the reflector, not the tag, so its amplitude carries the antenna's
    relative gain in *that* direction (``departure_gains``). A back-wall
    echo leaving through the antenna's -20 dB back lobe is 10x weaker in
    amplitude than an in-beam scatterer's — which is why multipath grows
    with depth in practice: the beam cone widens, and more clutter falls
    inside it.

    Args:
        reflectors: active image sources.
        tag_position: tag location, meters.
        wavelength_m: carrier wavelength, meters.
        los_distance_m: line-of-sight antenna-tag distance, meters.
        los_gain: antenna relative gain toward the tag (for the LoS half
            of the mixed paths).
        departure_gains: per-reflector antenna gain toward the image
            source; defaults to 1 for every reflector (omnidirectional).

    Returns:
        The complex sum; add to the line-of-sight term ``g/d^2 * e^{-j4πd/λ}``.

    Raises:
        ValueError: on non-positive wavelength or LoS distance, or a
            gain list not matching the reflectors.
    """
    if wavelength_m <= 0.0:
        raise ValueError("wavelength must be positive")
    if los_distance_m <= 0.0:
        raise ValueError("LoS distance must be positive")
    if departure_gains is None:
        departure_gains = [1.0] * len(reflectors)
    if len(departure_gains) != len(reflectors):
        raise ValueError(
            f"got {len(departure_gains)} departure gains for {len(reflectors)} reflectors"
        )
    k = 2.0 * np.pi / wavelength_m
    total = 0.0 + 0.0j
    for reflector, departure_gain in zip(reflectors, departure_gains):
        length = reflector.path_length(tag_position)
        if length <= 0.0:
            continue
        mixed_amplitude = (
            2.0
            * np.sqrt(max(los_gain, 0.0) * max(departure_gain, 0.0))
            * reflector.amplitude
            / (los_distance_m * length)
        )
        # Round-trip path of a mixed echo: out over d, back over L.
        mixed_phase = k * (los_distance_m + length)
        total += mixed_amplitude * np.exp(
            -1j * (mixed_phase + reflector.phase_shift_rad)
        )
        double_amplitude = max(departure_gain, 0.0) * (reflector.amplitude / length) ** 2
        double_phase = k * 2.0 * length + 2.0 * reflector.phase_shift_rad
        total += double_amplitude * np.exp(-1j * double_phase)
    return complex(total)
