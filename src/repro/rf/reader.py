"""Reader front end: turns trajectories into streams of read records.

Models the ImpinJ Speedway R420 at the level the LLRP client observes it:
a sequence of ``(epc, antenna, timestamp, channel, phase, rssi)`` tuples.
The reader interrogates a tag moving along a trajectory at a configurable
read rate; optional FCC frequency hopping changes the wavelength per read
(off by default — the paper pins the reader at 920.625 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_READ_RATE_HZ,
    fcc_channel_frequency,
    wavelength_for_frequency,
)
from repro.rf.channel import Channel


@dataclass(frozen=True)
class ReadRecord:
    """One tag read as reported over LLRP.

    Attributes:
        epc: tag identifier.
        antenna: antenna name.
        timestamp_s: read time, seconds from scan start.
        channel_index: FCC hop channel (or -1 when hopping is disabled).
        frequency_hz: carrier frequency of this read.
        phase_rad: reported wrapped phase in ``[0, 2*pi)``.
        rssi_dbm: reported signal strength.
        tag_position: ground-truth/known tag position at read time,
            ``(x, y, z)`` meters. In the paper this is known from the
            slide/turntable encoder; the algorithms legitimately consume it.
    """

    epc: str
    antenna: str
    timestamp_s: float
    channel_index: int
    frequency_hz: float
    phase_rad: float
    rssi_dbm: float
    tag_position: tuple[float, float, float]

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength of this read, meters."""
        return wavelength_for_frequency(self.frequency_hz)

    def position_array(self) -> np.ndarray:
        """Tag position as a ``(3,)`` float array."""
        return np.array(self.tag_position, dtype=float)


@dataclass
class ReaderConfig:
    """Reader operating parameters.

    Attributes:
        frequency_hz: fixed carrier frequency (paper: 920.625 MHz).
        read_rate_hz: tag reads per second (paper: >100 Hz).
        frequency_hopping: when True, hop pseudo-randomly over the 50 FCC
            channels every ``hop_interval_s``; phase offsets then differ
            per channel in reality, which is why the paper pins the
            frequency — the simulator reproduces the pinned mode by default.
        hop_interval_s: FCC dwell time per channel.
        dropout_probability: probability that a scheduled read is missed
            (collision/fading), producing realistic non-uniform sampling.
    """

    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    read_rate_hz: float = DEFAULT_READ_RATE_HZ
    frequency_hopping: bool = False
    hop_interval_s: float = 0.2
    dropout_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValueError("frequency must be positive")
        if self.read_rate_hz <= 0.0:
            raise ValueError("read rate must be positive")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        if self.hop_interval_s <= 0.0:
            raise ValueError("hop interval must be positive")


@dataclass
class Reader:
    """Simulated reader driving one or more channels."""

    config: ReaderConfig = field(default_factory=ReaderConfig)

    def interrogate(
        self,
        channel: Channel,
        positions: np.ndarray,
        timestamps_s: Sequence[float] | np.ndarray,
        rng: np.random.Generator,
    ) -> List[ReadRecord]:
        """Read the channel's tag at each ``(position, timestamp)`` sample.

        Args:
            channel: the antenna-tag channel to interrogate.
            positions: array of shape ``(n, 3)`` of tag positions.
            timestamps_s: per-sample read times, seconds.
            rng: random generator for noise, hopping and dropouts.

        Returns:
            Read records, one per surviving sample, in time order.

        Raises:
            ValueError: on shape mismatch between positions and timestamps.
        """
        points = np.asarray(positions, dtype=float)
        times = np.asarray(timestamps_s, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"positions must have shape (n, 3), got {points.shape}")
        if times.shape != (points.shape[0],):
            raise ValueError(
                f"got {points.shape[0]} positions but {times.shape} timestamps"
            )

        records: List[ReadRecord] = []
        current_channel = -1
        frequency = self.config.frequency_hz
        next_hop_time = 0.0
        for position, timestamp in zip(points, times):
            if self.config.dropout_probability > 0.0 and rng.random() < self.config.dropout_probability:
                continue
            if self.config.frequency_hopping and timestamp >= next_hop_time:
                current_channel = int(rng.integers(0, 50))
                frequency = fcc_channel_frequency(current_channel)
                next_hop_time = timestamp + self.config.hop_interval_s
            # The channel's wavelength is fixed at construction; for the
            # pinned-frequency mode used throughout the paper these agree.
            phase = channel.observe_phase(position, rng)
            rssi = channel.observe_rssi(position)
            records.append(
                ReadRecord(
                    epc=channel.tag.epc,
                    antenna=channel.antenna.name,
                    timestamp_s=float(timestamp),
                    channel_index=current_channel,
                    frequency_hz=frequency,
                    phase_rad=phase,
                    rssi_dbm=rssi,
                    tag_position=(float(position[0]), float(position[1]), float(position[2])),
                )
            )
        return records

    def collect_static(
        self,
        channel: Channel,
        tag_position: "Iterable[float] | np.ndarray",
        sample_count: int,
        rng: np.random.Generator,
    ) -> List[ReadRecord]:
        """Collect ``sample_count`` reads of a *static* tag.

        Mirrors the Fig. 3 experiment (500 reads per antenna-tag pair at a
        fixed 1 m separation).
        """
        if sample_count <= 0:
            raise ValueError("sample count must be positive")
        position = np.asarray(list(tag_position), dtype=float).reshape(1, 3)
        positions = np.repeat(position, sample_count, axis=0)
        timestamps = np.arange(sample_count) / self.config.read_rate_hz
        return self.interrogate(channel, positions, timestamps, rng)
