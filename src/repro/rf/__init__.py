"""RF substrate: a simulator standing in for the paper's COTS hardware.

The paper evaluates LION on an ImpinJ Speedway R420 reader, Laird S9028PCL
directional antennas and ImpinJ E41-B/E51 tags. This subpackage simulates
that stack at the level the algorithms observe it: a stream of wrapped
phase reads tagged with tag position and timestamp, produced by a physical
model that includes

* the Eq. (1) phase model with per-antenna offset ``theta_R`` and per-tag
  offset ``theta_T``;
* a hidden true phase center displaced 2-3 cm from the antenna's physical
  center (the Fig. 2 phenomenon LION exists to calibrate);
* a directional main-beam gain pattern with SNR-dependent phase noise
  (samples collected off-beam are noisier — the Fig. 16/17 effect);
* image-source multipath reflectors whose *relative* strength grows with
  depth as the line-of-sight power falls (the Fig. 14(b) effect);
* additive Gaussian phase noise, N(0, 0.1 rad) by default as in the
  paper's own simulations.
"""

from repro.rf.antenna import Antenna
from repro.rf.tag import Tag
from repro.rf.noise import (
    BurstyPhaseNoise,
    GaussianPhaseNoise,
    NoPhaseNoise,
    SnrScaledPhaseNoise,
)
from repro.rf.multipath import Reflector, WallReflector, multipath_components
from repro.rf.channel import Channel, ChannelConfig
from repro.rf.reader import ReadRecord, Reader, ReaderConfig

__all__ = [
    "Antenna",
    "Tag",
    "BurstyPhaseNoise",
    "GaussianPhaseNoise",
    "NoPhaseNoise",
    "SnrScaledPhaseNoise",
    "Reflector",
    "WallReflector",
    "multipath_components",
    "Channel",
    "ChannelConfig",
    "ReadRecord",
    "Reader",
    "ReaderConfig",
]
