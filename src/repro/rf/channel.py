"""The composite backscatter channel: LoS + multipath + noise -> phase.

This is where the Eq. (1) phase model is realised end to end. Given an
antenna, a tag and a tag position, the channel forms the complex channel
response

``h = g/d^2 * exp(-j * 4*pi*d/lambda) + multipath``

(with ``d`` measured from the antenna's *true phase center*), extracts the
distance-induced phase as ``-angle(h)``, adds the hardware offsets
``theta_T + theta_R`` and a phase-noise draw, and wraps into ``[0, 2*pi)``
as a reader would report. RSSI is derived from ``|h|`` for realism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.geometry.points import ArrayLike, as_point_array
from repro.rf.antenna import Antenna
from repro.rf.multipath import Reflector, multipath_components
from repro.rf.noise import GaussianPhaseNoise, PhaseNoiseModel
from repro.rf.tag import Tag


@dataclass
class ChannelConfig:
    """Channel parameters.

    Attributes:
        wavelength_m: carrier wavelength.
        noise: phase-noise model applied to the reported phase.
        reflectors: image-source multipath components (empty = pure LoS).
        reference_rssi_dbm: RSSI at 1 m on boresight with no multipath;
            used only to synthesise plausible RSSI values.
    """

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    noise: PhaseNoiseModel = field(default_factory=GaussianPhaseNoise)
    reflectors: Sequence[Reflector] = ()
    reference_rssi_dbm: float = -45.0

    def __post_init__(self) -> None:
        if self.wavelength_m <= 0.0:
            raise ValueError(f"wavelength must be positive, got {self.wavelength_m}")


@dataclass
class Channel:
    """A realised channel between one antenna and one tag."""

    antenna: Antenna
    tag: Tag
    config: ChannelConfig = field(default_factory=ChannelConfig)

    def complex_response(self, tag_position: ArrayLike) -> complex:
        """Complex round-trip channel response at ``tag_position``.

        The LoS term is normalised so that a boresight read at 1 m has
        unit magnitude, keeping multipath-to-LoS ratios meaningful.
        """
        position = as_point_array(tag_position, dim=3)
        distance = self.antenna.distance_to(position, use_phase_center=True)
        if distance <= 0.0:
            raise ValueError("tag cannot be located exactly at the phase center")
        gain = self.antenna.relative_gain(position)
        los_amplitude = gain / distance**2
        los_phase = 2.0 * TWO_PI * distance / self.config.wavelength_m
        response = los_amplitude * np.exp(-1j * los_phase)
        if self.config.reflectors:
            departure_gains = [
                self.antenna.relative_gain(r.image_array())
                for r in self.config.reflectors
            ]
            response += multipath_components(
                self.config.reflectors,
                position,
                self.config.wavelength_m,
                los_distance_m=distance,
                los_gain=gain,
                departure_gains=departure_gains,
            )
        return complex(response)

    def true_distance(self, tag_position: ArrayLike) -> float:
        """Ground-truth distance from the phase center (simulation only)."""
        return self.antenna.distance_to(tag_position, use_phase_center=True)

    def observe_phase(
        self, tag_position: ArrayLike, rng: np.random.Generator
    ) -> float:
        """One wrapped phase read at ``tag_position``, radians in ``[0, 2*pi)``.

        Implements Eq. (1): distance phase (distorted by multipath) plus
        ``theta_T + theta_R`` plus a noise draw, modulo 2*pi.
        """
        position = as_point_array(tag_position, dim=3)
        response = self.complex_response(position)
        distance_phase = -np.angle(response)
        distance = self.antenna.distance_to(position, use_phase_center=True)
        gain = self.antenna.relative_gain(position)
        noise = self.config.noise.sample(rng, distance, gain)
        phase = (
            distance_phase
            + self.tag.phase_offset_rad
            + self.antenna.phase_offset_rad
            + noise
        )
        return float(np.mod(phase, TWO_PI))

    def observe_rssi(self, tag_position: ArrayLike) -> float:
        """Synthetic RSSI in dBm derived from the channel magnitude."""
        magnitude = abs(self.complex_response(tag_position))
        if magnitude <= 0.0:
            return -120.0
        rssi = (
            self.config.reference_rssi_dbm
            + 10.0 * np.log10(magnitude)
            - self.tag.backscatter_loss_db
        )
        return float(rssi)

    def ideal_phase(self, tag_position: ArrayLike, wrapped: bool = True) -> float:
        """Noise- and multipath-free phase at ``tag_position``.

        Still measured from the true phase center and still including the
        hardware offsets; this is the value Eq. (1) would report on a
        perfect channel. Used by tests and the Fig. 2 study.
        """
        distance = self.antenna.distance_to(tag_position, use_phase_center=True)
        phase = (
            2.0 * TWO_PI * distance / self.config.wavelength_m
            + self.tag.phase_offset_rad
            + self.antenna.phase_offset_rad
        )
        if wrapped:
            phase = np.mod(phase, TWO_PI)
        return float(phase)
