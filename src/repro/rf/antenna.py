"""Directional reader antenna with a hidden, displaced phase center.

The crux of the paper: localization code knows only the antenna's
*physical* center (where the technician measured it), while signals are
actually transmitted and received from the *phase* center, which sits a
few centimeters away due to intrinsic hardware characteristics (Fig. 1-2).
The :class:`Antenna` model keeps both, exposes only the physical center as
"public knowledge", and lets the channel simulation use the true phase
center — exactly the information asymmetry the calibration must resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array


@dataclass
class Antenna:
    """A directional RFID reader antenna.

    Attributes:
        physical_center: the manually measured center, world coordinates
            (meters). This is what uncalibrated localization uses.
        center_displacement: true phase center minus physical center
            (meters). Hidden from algorithms; typically 2-3 cm (Fig. 2).
        phase_offset_rad: the antenna-side phase rotation ``theta_R`` of
            Eq. (1), radians in ``[0, 2*pi)``.
        boresight: unit vector of the main-beam direction. Defaults to +y,
            matching the paper's geometry (tag track along x, antenna
            facing the track along y).
        beamwidth_deg: full half-power beamwidth of the main lobe. The
            Laird S9028PCL has a ~70 degree beamwidth.
        gain_dbi: peak gain. Only relative gain matters to the phase
            simulation; kept for RSSI realism.
        center_wander_m: angle dependence of the phase center. Real
            apertures do not radiate from a single point: the effective
            phase center recedes along the boresight as the observation
            angle grows (a textbook horn/patch behaviour). This models it
            quadratically — at ``theta`` radians off boresight the
            effective center shifts by ``-center_wander_m * theta**2``
            along the boresight. Zero (default) keeps the paper's
            point-center idealisation; a few millimeters sets the floor
            any point-center calibration (LION included) cannot beat.
        name: identifier used in read records.
    """

    physical_center: Tuple[float, ...]
    center_displacement: Tuple[float, ...] = (0.0, 0.0, 0.0)
    phase_offset_rad: float = 0.0
    boresight: Tuple[float, ...] = (0.0, 1.0, 0.0)
    beamwidth_deg: float = 70.0
    gain_dbi: float = 8.5
    center_wander_m: float = 0.0
    name: str = "antenna"

    _physical: np.ndarray = field(init=False, repr=False)
    _displacement: np.ndarray = field(init=False, repr=False)
    _boresight: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._physical = as_point_array(self.physical_center, dim=3)
        self._displacement = as_point_array(self.center_displacement, dim=3)
        bore = as_point_array(self.boresight, dim=3)
        norm = float(np.linalg.norm(bore))
        if norm == 0.0:
            raise ValueError("boresight must be a non-zero vector")
        self._boresight = bore / norm
        if self.beamwidth_deg <= 0.0 or self.beamwidth_deg > 360.0:
            raise ValueError(f"beamwidth out of range: {self.beamwidth_deg}")

    @property
    def physical_center_array(self) -> np.ndarray:
        """Physical (measured) center as a ``(3,)`` float array."""
        return self._physical.copy()

    @property
    def phase_center(self) -> np.ndarray:
        """True phase center: physical center plus hidden displacement."""
        return self._physical + self._displacement

    def off_boresight_angle(self, point: ArrayLike) -> float:
        """Angle in radians between the boresight and the ray to ``point``.

        Measured from the *phase* center, since that is where the pattern
        is physically anchored.
        """
        p = as_point_array(point, dim=3)
        ray = p - self.phase_center
        norm = float(np.linalg.norm(ray))
        if norm == 0.0:
            return 0.0
        cosine = float(np.clip(np.dot(ray / norm, self._boresight), -1.0, 1.0))
        return float(np.arccos(cosine))

    def relative_gain(self, point: ArrayLike) -> float:
        """Linear power gain toward ``point``, relative to boresight peak.

        A raised-cosine main lobe calibrated so the half-power (-3 dB)
        point falls at half the beamwidth, floored at -20 dB to mimic side
        lobes. This produces the paper's observation that samples beyond
        the main beam carry much more phase noise (Sec. V-E).
        """
        angle = self.off_boresight_angle(point)
        half_beam = np.radians(self.beamwidth_deg) / 2.0
        # cos^n pattern with n chosen so gain(half_beam) == 0.5.
        exponent = np.log(0.5) / np.log(np.cos(half_beam)) if half_beam < np.pi / 2 else 2.0
        floor = 10.0 ** (-20.0 / 10.0)
        if angle >= np.pi / 2.0:
            return floor
        gain = float(np.cos(angle) ** exponent)
        return max(gain, floor)

    def effective_phase_center(self, point: ArrayLike) -> np.ndarray:
        """Phase center as seen from ``point``, including angle wander.

        With ``center_wander_m == 0`` this is just :attr:`phase_center`;
        otherwise the center recedes along the boresight quadratically
        with the off-boresight angle (computed from the nominal center —
        the sub-centimeter recursion this ignores is far below the model's
        fidelity).
        """
        center = self.phase_center
        if self.center_wander_m == 0.0:
            return center
        angle = self.off_boresight_angle(point)
        return center - self.center_wander_m * angle**2 * self._boresight

    def distance_to(self, point: ArrayLike, use_phase_center: bool = True) -> float:
        """Distance from the antenna to ``point``.

        Args:
            point: the target position.
            use_phase_center: when True (default) measure from the true
                (angle-dependent) phase center — what the RF channel does;
                when False measure from the physical center — what naive
                localization assumes.
        """
        p = as_point_array(point, dim=3)
        origin = self.effective_phase_center(p) if use_phase_center else self._physical
        return float(np.linalg.norm(p - origin))
