"""Coordinate rotations and line-frame transforms.

The lower-dimension recovery of Sec. III-C assumes an axis-aligned linear
trajectory ("the tag moves along the x-axis"). Real trajectories may run in
an arbitrary direction; these helpers rotate positions into a frame whose
first axis is the trajectory direction so the axis-aligned math applies,
then rotate the estimate back.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array


def unit(vector: ArrayLike, name: str = "vector") -> np.ndarray:
    """Normalize ``vector`` to unit length.

    Args:
        vector: any 1-D vector (list, tuple or array).
        name: label used in the error message, so callers normalizing a
            named quantity ("rotation axis", "boresight") keep a precise
            diagnostic.

    Raises:
        ValueError: if ``vector`` is the zero vector (or contains
            non-finite entries, whose norm is not a usable scale).
    """
    v = np.asarray(vector, dtype=float)
    norm = float(np.linalg.norm(v))
    if norm == 0.0 or not np.isfinite(norm):
        raise ValueError(f"{name} must be non-zero")
    return v / norm


def rotation_matrix_2d(angle_rad: float) -> np.ndarray:
    """Counter-clockwise rotation matrix by ``angle_rad``."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s], [s, c]])


def rotation_matrix_3d(axis: ArrayLike, angle_rad: float) -> np.ndarray:
    """Rotation matrix about ``axis`` by ``angle_rad`` (Rodrigues' formula).

    Raises:
        ValueError: if ``axis`` is the zero vector.
    """
    u = unit(as_point_array(axis, dim=3), name="rotation axis")
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    cross = np.array(
        [
            [0.0, -u[2], u[1]],
            [u[2], 0.0, -u[0]],
            [-u[1], u[0], 0.0],
        ]
    )
    return c * np.eye(3) + s * cross + (1.0 - c) * np.outer(u, u)


def to_line_frame_2d(
    points: np.ndarray, origin: ArrayLike, direction: ArrayLike
) -> tuple[np.ndarray, np.ndarray]:
    """Rotate/translate ``points`` into the frame of a 2D line.

    The line frame has its origin at ``origin`` and its first axis along
    ``direction``; points on the line have second coordinate 0.

    Args:
        points: array of shape ``(n, 2)``.
        origin: a point on the line.
        direction: the line direction (not necessarily unit length).

    Returns:
        ``(transformed_points, rotation)`` where ``rotation`` is the 2x2
        matrix mapping world coordinates to line-frame coordinates.

    Raises:
        ValueError: if ``direction`` is the zero vector.
    """
    d = unit(as_point_array(direction, dim=2), name="line direction")
    rotation = np.array([[d[0], d[1]], [-d[1], d[0]]])
    o = as_point_array(origin, dim=2)
    pts = np.asarray(points, dtype=float)
    transformed = (pts - o[np.newaxis, :]) @ rotation.T
    return transformed, rotation


def from_line_frame_2d(
    points: np.ndarray, origin: ArrayLike, rotation: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`to_line_frame_2d` given its returned ``rotation``."""
    o = as_point_array(origin, dim=2)
    pts = np.asarray(points, dtype=float)
    return pts @ rotation + o[np.newaxis, :]


def orthonormal_basis_for_plane(normal: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    """Two orthonormal vectors spanning the plane with the given ``normal``.

    Used to parameterise the circle in which two spheres intersect.

    Raises:
        ValueError: if ``normal`` is the zero vector.
    """
    n = unit(as_point_array(normal, dim=3), name="plane normal")
    # Pick the world axis least aligned with the normal as a seed.
    seed = np.eye(3)[int(np.argmin(np.abs(n)))]
    u = unit(np.cross(n, seed))
    v = np.cross(n, u)
    return u, v
