"""Circles and spheres of constant antenna-tag distance.

Eq. (2) of the paper: a single distance measurement ``d_t`` constrains the
antenna to the circle (2D) or sphere (3D) centered at the tag position with
radius ``d_t``. These types provide the exact intersection operations that
the linear model replaces, and serve as ground truth in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array


@dataclass(frozen=True)
class Circle:
    """A circle in the plane: ``|p - center| = radius``."""

    center: Tuple[float, float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", tuple(float(v) for v in self.center))

    def center_array(self) -> np.ndarray:
        """Center as a float array of shape ``(2,)``."""
        return np.array(self.center, dtype=float)

    def contains(self, point: ArrayLike, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies on the circle within ``tol`` meters."""
        p = as_point_array(point, dim=2)
        return abs(float(np.linalg.norm(p - self.center_array())) - self.radius) <= tol


@dataclass(frozen=True)
class Sphere:
    """A sphere in 3-space: ``|p - center| = radius``."""

    center: Tuple[float, float, float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", tuple(float(v) for v in self.center))

    def center_array(self) -> np.ndarray:
        """Center as a float array of shape ``(3,)``."""
        return np.array(self.center, dtype=float)

    def contains(self, point: ArrayLike, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies on the sphere within ``tol`` meters."""
        p = as_point_array(point, dim=3)
        return abs(float(np.linalg.norm(p - self.center_array())) - self.radius) <= tol


def circle_circle_intersection(first: Circle, second: Circle) -> np.ndarray:
    """Intersection points of two circles.

    Returns:
        An array of shape ``(k, 2)`` with ``k`` in ``{0, 1, 2}``: the
        circles may be disjoint, tangent, or properly intersecting.

    Raises:
        ValueError: if the circles are concentric (either identical with
            infinitely many intersections, or nested with none — both are
            degenerate for radical-line purposes).
    """
    c0 = first.center_array()
    c1 = second.center_array()
    separation = float(np.linalg.norm(c1 - c0))
    if separation == 0.0:
        raise ValueError("concentric circles have no well-defined intersection")
    r0, r1 = first.radius, second.radius
    if separation > r0 + r1 or separation < abs(r0 - r1):
        return np.empty((0, 2), dtype=float)
    # Distance from c0 to the radical line along the center line.
    along = (r0**2 - r1**2 + separation**2) / (2.0 * separation)
    half_chord_sq = r0**2 - along**2
    axis = (c1 - c0) / separation
    foot = c0 + along * axis
    if half_chord_sq <= 0.0:
        return foot[np.newaxis, :]
    half_chord = float(np.sqrt(half_chord_sq))
    perpendicular = np.array([-axis[1], axis[0]])
    return np.vstack([foot + half_chord * perpendicular, foot - half_chord * perpendicular])


def sphere_sphere_intersection_circle(
    first: Sphere, second: Sphere
) -> tuple[np.ndarray, np.ndarray, float] | None:
    """Intersection circle of two spheres (Fig. 7 of the paper).

    Two intersecting spheres meet in a circle lying in their radical plane.

    Returns:
        A tuple ``(center, normal, radius)`` of the intersection circle, or
        ``None`` if the spheres do not intersect. A tangent contact is
        returned as a circle of radius 0.

    Raises:
        ValueError: if the spheres are concentric.
    """
    c0 = first.center_array()
    c1 = second.center_array()
    separation = float(np.linalg.norm(c1 - c0))
    if separation == 0.0:
        raise ValueError("concentric spheres have no well-defined intersection")
    r0, r1 = first.radius, second.radius
    if separation > r0 + r1 or separation < abs(r0 - r1):
        return None
    along = (r0**2 - r1**2 + separation**2) / (2.0 * separation)
    radius_sq = r0**2 - along**2
    axis = (c1 - c0) / separation
    center = c0 + along * axis
    radius = float(np.sqrt(max(radius_sq, 0.0)))
    return center, axis, radius
