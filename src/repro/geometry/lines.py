"""Lines, planes, and the radical lines/planes at the heart of LION.

Observation 1 of the paper: if several circles centered at different tag
positions intersect in the antenna position, that position is also the
intersection of their pairwise *radical lines* — the straight lines through
the two intersection points of a circle pair. Subtracting the two circle
equations cancels the quadratic terms, so a radical line is linear:

``2(x_i - x_j) x + 2(y_i - y_j) y = x_i^2 - x_j^2 + y_i^2 - y_j^2 - d_i^2 + d_j^2``

(Eq. 5). In 3D the same subtraction of two sphere equations yields the
*radical plane* of Eq. (8). These exact-geometry constructions are used by
the core model (via :mod:`repro.core.radical`) and by the tests that verify
the linear system against closed-form geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array

#: Relative tolerance used to declare two lines/planes parallel.
_PARALLEL_TOL = 1e-12


@dataclass(frozen=True)
class Line2D:
    """A line in the plane in implicit form ``a*x + b*y = c``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if abs(self.a) < _PARALLEL_TOL and abs(self.b) < _PARALLEL_TOL:
            raise ValueError("degenerate line: both coefficients are ~0")

    @property
    def normal(self) -> np.ndarray:
        """Unit normal vector of the line."""
        n = np.array([self.a, self.b], dtype=float)
        return n / np.linalg.norm(n)

    @property
    def direction(self) -> np.ndarray:
        """Unit direction vector of the line (normal rotated by 90 deg)."""
        n = self.normal
        return np.array([-n[1], n[0]])

    def evaluate(self, point: ArrayLike) -> float:
        """Return ``a*x + b*y - c`` at ``point`` (0 iff the point is on the line)."""
        p = as_point_array(point, dim=2)
        return float(self.a * p[0] + self.b * p[1] - self.c)

    def distance_to(self, point: ArrayLike) -> float:
        """Perpendicular distance from ``point`` to the line."""
        norm = float(np.hypot(self.a, self.b))
        return abs(self.evaluate(point)) / norm

    def contains(self, point: ArrayLike, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies on the line within ``tol`` meters."""
        return self.distance_to(point) <= tol


@dataclass(frozen=True)
class Plane3D:
    """A plane in 3-space in implicit form ``a*x + b*y + c*z = d``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if np.linalg.norm([self.a, self.b, self.c]) < _PARALLEL_TOL:
            raise ValueError("degenerate plane: zero normal vector")

    @property
    def normal(self) -> np.ndarray:
        """Unit normal vector of the plane."""
        n = np.array([self.a, self.b, self.c], dtype=float)
        return n / np.linalg.norm(n)

    def evaluate(self, point: ArrayLike) -> float:
        """Return ``a*x + b*y + c*z - d`` at ``point``."""
        p = as_point_array(point, dim=3)
        return float(self.a * p[0] + self.b * p[1] + self.c * p[2] - self.d)

    def distance_to(self, point: ArrayLike) -> float:
        """Perpendicular distance from ``point`` to the plane."""
        norm = float(np.linalg.norm([self.a, self.b, self.c]))
        return abs(self.evaluate(point)) / norm

    def contains(self, point: ArrayLike, tol: float = 1e-9) -> bool:
        """Whether ``point`` lies on the plane within ``tol`` meters."""
        return self.distance_to(point) <= tol


def radical_line(
    center_i: ArrayLike,
    d_i: float,
    center_j: ArrayLike,
    d_j: float,
) -> Line2D:
    """Radical line of two circles (Eq. 5 of the paper).

    Args:
        center_i: center of the first circle (tag position ``T_i``).
        d_i: radius of the first circle (antenna-tag distance).
        center_j: center of the second circle (tag position ``T_j``).
        d_j: radius of the second circle.

    Returns:
        The line ``2(x_i-x_j) x + 2(y_i-y_j) y = x_i^2-x_j^2+y_i^2-y_j^2-d_i^2+d_j^2``.

    Raises:
        ValueError: if the two centers coincide (no radical line exists).
    """
    ci = as_point_array(center_i, dim=2)
    cj = as_point_array(center_j, dim=2)
    if np.allclose(ci, cj):
        raise ValueError("radical line is undefined for concentric circles")
    a = 2.0 * (ci[0] - cj[0])
    b = 2.0 * (ci[1] - cj[1])
    c = float(np.dot(ci, ci) - np.dot(cj, cj) - d_i**2 + d_j**2)
    return Line2D(a, b, c)


def radical_plane(
    center_i: ArrayLike,
    d_i: float,
    center_j: ArrayLike,
    d_j: float,
) -> Plane3D:
    """Radical plane of two spheres (Eq. 8 of the paper)."""
    ci = as_point_array(center_i, dim=3)
    cj = as_point_array(center_j, dim=3)
    if np.allclose(ci, cj):
        raise ValueError("radical plane is undefined for concentric spheres")
    a = 2.0 * (ci[0] - cj[0])
    b = 2.0 * (ci[1] - cj[1])
    c = 2.0 * (ci[2] - cj[2])
    d = float(np.dot(ci, ci) - np.dot(cj, cj) - d_i**2 + d_j**2)
    return Plane3D(a, b, c, d)


def intersect_lines(lines: Sequence[Line2D]) -> np.ndarray:
    """Least-squares intersection point of two or more lines.

    For exactly two non-parallel lines this is their unique intersection;
    for more, the point minimizing the sum of squared implicit-form
    residuals. This mirrors how LION treats noisy radical lines.

    Raises:
        ValueError: if fewer than two lines are given or the system is
            rank-deficient (all lines parallel).
    """
    if len(lines) < 2:
        raise ValueError("need at least two lines to intersect")
    matrix = np.array([[line.a, line.b] for line in lines], dtype=float)
    rhs = np.array([line.c for line in lines], dtype=float)
    if np.linalg.matrix_rank(matrix) < 2:
        raise ValueError("lines are parallel; no unique intersection")
    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    return solution


def intersect_planes(planes: Sequence[Plane3D]) -> np.ndarray:
    """Least-squares intersection point of three or more planes.

    Raises:
        ValueError: if fewer than three planes are given or their normals
            do not span 3-space.
    """
    if len(planes) < 3:
        raise ValueError("need at least three planes to intersect in a point")
    matrix = np.array([[p.a, p.b, p.c] for p in planes], dtype=float)
    rhs = np.array([p.d for p in planes], dtype=float)
    if np.linalg.matrix_rank(matrix) < 3:
        raise ValueError("plane normals are degenerate; no unique intersection")
    solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    return solution
