"""Point types and distance helpers.

Positions in this library are plain numpy arrays of shape ``(2,)`` or
``(3,)`` (or stacks thereof, shape ``(n, dim)``). The small named tuples
here exist for readability at API boundaries — a :class:`Point2D` *is*
convertible to an array and all internal math runs on arrays.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray, "Point2D", "Point3D"]


class Point2D(NamedTuple):
    """A point in the plane, meters."""

    x: float
    y: float

    def as_array(self) -> np.ndarray:
        """Return the point as a float numpy array of shape ``(2,)``."""
        return np.array([self.x, self.y], dtype=float)

    def distance_to(self, other: "ArrayLike") -> float:
        """Euclidean distance from this point to ``other``."""
        return distance(self.as_array(), as_point_array(other, dim=2))


class Point3D(NamedTuple):
    """A point in 3-space, meters."""

    x: float
    y: float
    z: float

    def as_array(self) -> np.ndarray:
        """Return the point as a float numpy array of shape ``(3,)``."""
        return np.array([self.x, self.y, self.z], dtype=float)

    def distance_to(self, other: "ArrayLike") -> float:
        """Euclidean distance from this point to ``other``."""
        return distance(self.as_array(), as_point_array(other, dim=3))


def as_point_array(value: ArrayLike, dim: int | None = None) -> np.ndarray:
    """Coerce ``value`` into a float array of shape ``(dim,)``.

    Accepts :class:`Point2D`, :class:`Point3D`, sequences and arrays.
    When ``dim`` is given, the result is validated against it; a 2D point
    is promoted to 3D by appending ``z = 0`` when ``dim == 3``.

    Raises:
        ValueError: if the value cannot be interpreted as a point of the
            requested dimensionality.
    """
    if isinstance(value, (Point2D, Point3D)):
        array = value.as_array()
    else:
        array = np.asarray(value, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D point, got shape {array.shape}")
    if dim is not None:
        if array.shape[0] == 2 and dim == 3:
            array = np.append(array, 0.0)
        if array.shape[0] != dim:
            raise ValueError(
                f"expected a point of dimension {dim}, got {array.shape[0]}"
            )
    elif array.shape[0] not in (2, 3):
        raise ValueError(
            f"points must be 2-D or 3-D, got dimension {array.shape[0]}"
        )
    return array


def as_point_matrix(values: Iterable[ArrayLike], dim: int | None = None) -> np.ndarray:
    """Stack an iterable of points into a float matrix of shape ``(n, dim)``."""
    rows = [as_point_array(value, dim=dim) for value in values]
    if not rows:
        width = dim if dim is not None else 0
        return np.empty((0, width), dtype=float)
    return np.vstack(rows)


def distance(a: ArrayLike, b: ArrayLike) -> float:
    """Euclidean distance between two points of equal dimension."""
    pa = as_point_array(a)
    pb = as_point_array(b, dim=pa.shape[0])
    return float(np.linalg.norm(pa - pb))


def pairwise_distances(points: np.ndarray, target: ArrayLike) -> np.ndarray:
    """Distances from each row of ``points`` (shape ``(n, dim)``) to ``target``.

    This is the vectorised form of Eq. (2) in the paper: the distance from
    every tag position in a scan to a candidate antenna position.
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected an (n, dim) matrix, got shape {matrix.shape}")
    center = as_point_array(target, dim=matrix.shape[1])
    return np.linalg.norm(matrix - center[np.newaxis, :], axis=1)


def midpoint(a: ArrayLike, b: ArrayLike) -> np.ndarray:
    """Midpoint of segment ``ab`` as a float array."""
    pa = as_point_array(a)
    pb = as_point_array(b, dim=pa.shape[0])
    return (pa + pb) / 2.0
