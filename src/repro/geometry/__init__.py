"""Geometric primitives shared by the localization model and baselines.

The LION model is fundamentally geometric: circles/spheres of constant
antenna-tag distance, radical lines/planes obtained by subtracting pairs of
them, and the intersection of those linear loci. This subpackage provides
the exact-geometry counterparts of the noisy linear algebra in
:mod:`repro.core`, and is used heavily by the test-suite to validate the
model against closed-form geometry.
"""

from repro.geometry.points import (
    Point2D,
    Point3D,
    as_point_array,
    distance,
    pairwise_distances,
)
from repro.geometry.lines import (
    Line2D,
    Plane3D,
    intersect_lines,
    intersect_planes,
    radical_line,
    radical_plane,
)
from repro.geometry.circles import (
    Circle,
    Sphere,
    circle_circle_intersection,
    sphere_sphere_intersection_circle,
)
from repro.geometry.transforms import (
    rotation_matrix_2d,
    rotation_matrix_3d,
    to_line_frame_2d,
    from_line_frame_2d,
    unit,
)

__all__ = [
    "Point2D",
    "Point3D",
    "as_point_array",
    "distance",
    "pairwise_distances",
    "Line2D",
    "Plane3D",
    "intersect_lines",
    "intersect_planes",
    "radical_line",
    "radical_plane",
    "Circle",
    "Sphere",
    "circle_circle_intersection",
    "sphere_sphere_intersection_circle",
    "rotation_matrix_2d",
    "rotation_matrix_3d",
    "to_line_frame_2d",
    "from_line_frame_2d",
    "unit",
]
