"""Physical constants and default RF parameters used across the library.

The defaults mirror the hardware configuration of the LION paper
(Sec. V-A): an ImpinJ Speedway R420 reader working at 920.625 MHz with a
transmission power of 32 dBm, a Laird S9028PCL directional antenna, and
ImpinJ E41-B / E51 tags moving at 10 cm/s on a 2.5 m sliding track while
being read at over 100 Hz.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum, meters per second.
SPEED_OF_LIGHT = 299_792_458.0

#: Default carrier frequency of the reader, hertz (paper Sec. V-A).
DEFAULT_FREQUENCY_HZ = 920.625e6

#: Default carrier wavelength, meters (~32.6 cm at 920.625 MHz).
DEFAULT_WAVELENGTH_M = SPEED_OF_LIGHT / DEFAULT_FREQUENCY_HZ

#: Default reader transmission power, dBm (paper Sec. V-A).
DEFAULT_TX_POWER_DBM = 32.0

#: Default tag read (sampling) rate, hertz. The paper reports that a single
#: tag can be sampled at over 100 Hz (Sec. IV-A1).
DEFAULT_READ_RATE_HZ = 120.0

#: Default tag movement speed on the sliding track, meters per second.
DEFAULT_TAG_SPEED_MPS = 0.10

#: Length of the linear sliding track used in the evaluation, meters.
DEFAULT_TRACK_LENGTH_M = 2.5

#: Standard deviation of the Gaussian phase noise used in the paper's own
#: simulations (Sec. III-A), radians.
DEFAULT_PHASE_NOISE_STD_RAD = 0.10

#: Two pi, for readability of modulo-2*pi phase arithmetic.
TWO_PI = 2.0 * math.pi

#: FCC 902-928 MHz band: 50 hop channels of 500 kHz starting at 902.75 MHz.
#: Real Speedway readers frequency-hop across these; the simulator can too.
FCC_CHANNEL_COUNT = 50
FCC_FIRST_CHANNEL_HZ = 902.75e6
FCC_CHANNEL_STEP_HZ = 500e3


def wavelength_for_frequency(frequency_hz: float) -> float:
    """Return the free-space wavelength in meters for ``frequency_hz``.

    >>> round(wavelength_for_frequency(920.625e6), 4)
    0.3256
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def fcc_channel_frequency(channel_index: int) -> float:
    """Return the carrier frequency in hertz of FCC hop channel ``channel_index``.

    Channels are numbered 0..49 over the 902-928 MHz ISM band.
    """
    if not 0 <= channel_index < FCC_CHANNEL_COUNT:
        raise ValueError(
            f"channel index must be in [0, {FCC_CHANNEL_COUNT}), got {channel_index}"
        )
    return FCC_FIRST_CHANNEL_HZ + channel_index * FCC_CHANNEL_STEP_HZ
