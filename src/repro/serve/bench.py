"""Load generator for the serving engine (`lion serve-bench`).

Builds a Monte-Carlo-style stream of requests — one fixed paper-scale
line scan, re-noised phases per request, the dominant serving pattern —
and replays it through :class:`ServeEngine` at several ``max_batch_size``
settings, recording per-request latency (p50/p99) and throughput for
each. Batch size 1 *is* the single-request-dispatch baseline (every
request pays the scalar path through the same queue and thread), so the
reported speedups isolate exactly what micro-batching buys. A sample of
batched reports is checked bit-identical against the direct scalar
:func:`repro.pipeline.estimate` before any number is reported.

Lives in the package (not ``benchmarks/``) so the CLI subcommand and the
``benchmarks/bench_serve.py`` harness share one implementation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.sweep import clear_pair_cache
from repro.obs import collect_manifest
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.pipeline.registry import estimate as scalar_estimate
from repro.serve.engine import ServeConfig, ServeEngine, Ticket

_TARGET = np.array([0.08, 0.85])


def build_requests(count: int, reads: int, seed: int = 0) -> List[EstimationRequest]:
    """``count`` re-noised requests over one fixed line trajectory."""
    x = np.linspace(-0.6, 0.6, reads)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    distances = np.linalg.norm(positions - _TARGET, axis=1)
    requests: List[EstimationRequest] = []
    for index in range(count):
        rng = np.random.default_rng(seed + index)
        phases = np.mod(
            2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
            + 0.4
            + rng.normal(0.0, 0.05, reads),
            TWO_PI,
        )
        requests.append(EstimationRequest(positions=positions, phases_rad=phases))
    return requests


def _replay(
    requests: Sequence[EstimationRequest], batch_size: int, max_wait_s: float
) -> Tuple[Dict[str, float], List[EstimationReport]]:
    """Push one burst of requests through one engine; stats + reports.

    Closed-burst protocol: the whole stream is admitted into a stopped
    engine, then the batcher starts and drains it. This makes batch
    occupancy deterministic (every fused dispatch is full, regardless of
    machine speed), so the batch-size comparison measures dispatch
    throughput, not submission-rate racing. Latency is measured from
    batcher start to each request's resolution — under a burst that is
    each request's time-to-completion, so ``p99`` tracks the wall clock.
    """
    clear_pair_cache()
    config = ServeConfig(
        max_queue_depth=max(2 * len(requests), 64),
        max_batch_size=batch_size,
        max_wait_s=max_wait_s,
        cache_entries=0,
    )
    done_at: List[float] = [0.0] * len(requests)

    def _stamp(index: int) -> "Callable[[Future[EstimationReport]], None]":
        def callback(_future: "Future[EstimationReport]") -> None:
            done_at[index] = time.perf_counter()

        return callback

    with ServeEngine(config, start=False) as engine:
        tickets: List[Ticket] = []
        for index, request in enumerate(requests):
            ticket = engine.submit("lion", request)
            ticket.add_done_callback(_stamp(index))
            tickets.append(ticket)
        start = time.perf_counter()
        engine.start()
        reports = [ticket.result() for ticket in tickets]
        wall = time.perf_counter() - start

    latencies_ms = 1e3 * (np.array(done_at) - start)
    stats = {
        "wall_s": round(wall, 4),
        "requests_per_sec": round(len(requests) / wall, 2),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 3),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 3),
    }
    return stats, reports


def _reports_identical(ours: EstimationReport, theirs: EstimationReport) -> bool:
    """Field-level bit-identity between a batched and a scalar report."""
    residuals_equal = (
        ours.residuals is None
        and theirs.residuals is None
        or ours.residuals is not None
        and theirs.residuals is not None
        and np.array_equal(ours.residuals, theirs.residuals)
    )
    return (
        bool(np.array_equal(ours.position, theirs.position))
        and ours.reference_distance_m == theirs.reference_distance_m
        and residuals_equal
        and ours.diagnostics == theirs.diagnostics
        and ours.config_hash == theirs.config_hash
    )


def run_load(
    requests: int = 64,
    reads: int = 400,
    batch_sizes: Sequence[int] = (1, 8, 32),
    seed: int = 0,
    max_wait_s: float = 0.002,
    check: int = 8,
) -> Dict[str, Any]:
    """Replay one request stream at every batch size; JSON-ready payload.

    Args:
        requests: stream length per batch-size replay.
        reads: reads per scan (the paper-scale line scan is 400).
        batch_sizes: ``max_batch_size`` settings to measure; include 1
            for the single-request-dispatch baseline.
        seed: base seed of the re-noised phase streams.
        max_wait_s: batching window of every replayed engine.
        check: how many requests to verify bit-identical against the
            direct scalar path (0 disables).

    Raises:
        AssertionError: if any checked batched report differs from its
            scalar counterpart — a benchmark that changed the answer
            must not report a speedup.
    """
    stream = build_requests(requests, reads, seed=seed)
    batch: Dict[str, Dict[str, float]] = {}
    sample: List[EstimationReport] = []
    for batch_size in batch_sizes:
        stats, reports = _replay(stream, batch_size, max_wait_s)
        batch[str(batch_size)] = stats
        sample = reports

    for request, report in list(zip(stream, sample))[:check]:
        scalar = scalar_estimate("lion", request)
        assert _reports_identical(report, scalar), (
            "batched report diverged from the scalar path"
        )

    payload: Dict[str, Any] = {
        "benchmark": "serve_microbatch",
        "requests": requests,
        "reads": reads,
        "max_wait_s": max_wait_s,
        "cpu_count": os.cpu_count(),
        "batch": batch,
        "equivalence_checked": min(check, requests),
        "manifest": collect_manifest(
            seed=seed,
            config={
                "requests": requests,
                "reads": reads,
                "batch_sizes": list(batch_sizes),
                "max_wait_s": max_wait_s,
            },
        ).to_dict(),
    }
    baseline = batch.get("1")
    if baseline is not None:
        for batch_size in batch_sizes:
            if batch_size == 1:
                continue
            payload[f"speedup_{batch_size}_vs_1"] = round(
                batch[str(batch_size)]["requests_per_sec"]
                / baseline["requests_per_sec"],
                3,
            )
    return payload
