"""Group keys and the fused batch executor of the serving engine.

The engine's dispatch unit is a *group*: requests sharing
``(estimator, config_hash, dim)``. Members of one group run through one
estimator configuration, so a batchable group — batch LION with the WLS
solver — collapses into a single fused dispatch: per-request
validation/preprocess/preparation (:meth:`LionLocalizer.prepare`),
pair selection and radical-row geometry through the cross-call cache of
:mod:`repro.core.sweep` (concurrent requests usually observe one
deployment trajectory, so pairing amortizes to a dict lookup), and one
stacked IRLS over every member's system
(:func:`repro.core.solvers.solve_weighted_least_squares_batch`) whose
solutions are bit-identical to the scalar solver. A member that fails
preparation or assembly carries its ``ValueError`` in the result slot —
the engine resolves it through the scalar path so one bad request
degrades alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.localizer import PreparedScan
from repro.core.solvers import solve_weighted_least_squares_batch
from repro.core.sweep import cached_assembly_recipe, content_digest
from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import current_span, tracing_enabled
from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.pipeline.estimators import LionEstimator

#: One dispatch group: ``(estimator name, config hash, dim)``.
GroupKey = Tuple[str, str, int]

#: Per-member outcome of a fused dispatch: the report, or the
#: ``ValueError`` the scalar path would raise for that member.
MemberResult = Union[EstimationReport, ValueError]


def group_key(name: str, config: EstimatorConfig, config_hash: str) -> GroupKey:
    """Dispatch-group key of one request.

    ``dim`` is part of the key even though it is already folded into the
    config hash: it keeps the key self-describing for metrics labels and
    guards against hash-collision pathologies joining 2D and 3D members.
    Configs without a ``dim`` (scan-frame baselines) key as 0.
    """
    return (name, config_hash, int(getattr(config, "dim", 0)))


def is_batchable(name: str, config: EstimatorConfig) -> bool:
    """Whether requests of this estimator/config fuse into one solve.

    Batch LION with the WLS solver is the (paper-default) fused path; its
    IRLS batch kernel is pinned bit-identical to the scalar solver.
    Everything else — grid searches, streaming, scan-frame baselines, the
    plain-LS variant — dispatches per request.
    """
    return name == "lion" and getattr(config, "method", None) == "wls"


def execute_batch(
    estimator: LionEstimator,
    requests: Sequence[EstimationRequest],
    request_ids: Optional[Sequence[Optional[str]]] = None,
) -> List[MemberResult]:
    """Run one batchable group through the fused prepare/pair/solve path.

    Returns one slot per request, in request order: the
    :class:`EstimationReport` (field-identical to
    ``estimator.estimate(request)``), or the ``ValueError`` subclass that
    member raised during validation, preparation, or assembly. The batch
    solver itself ejects rank-deficient members to the scalar IRLS
    internally, so a singular member never perturbs its neighbours.

    ``request_ids`` (when given, one per request, ``None`` entries
    allowed) annotates the enclosing span with a ``member_error`` event
    per failed slot, so a stitched request trace shows *which* member of
    a fused batch fell back and why.
    """

    def _note_member_error(index: int, error: ValueError) -> None:
        if request_ids is None or not tracing_enabled():
            return
        parent = current_span()
        if parent is not None:
            parent.add_event(
                kind="member_error",
                member=index,
                request_id=request_ids[index],
                error=type(error).__name__,
            )

    localizer = estimator.localizer
    results: List[MemberResult | None] = [None] * len(requests)
    pending: List[Tuple[int, PreparedScan, LinearSystem]] = []
    for index, request in enumerate(requests):
        try:
            request.require("positions", "phases_rad")
            prepared = localizer.prepare(
                request.positions,
                request.phases_rad,
                segment_ids=request.segment_ids,
                exclude_mask=request.exclude_mask,
                reference_index=request.reference_index,
            )
            scan_key = (
                content_digest(request.positions),
                content_digest(request.segment_ids),
            )
            recipe = cached_assembly_recipe(
                localizer,
                prepared,
                localizer.interval_m,
                scan_key,
                content_digest(request.exclude_mask),
            )
            system = recipe.assemble(prepared.delta_d)
        except ValueError as error:
            results[index] = error
            _note_member_error(index, error)
            continue
        pending.append((index, prepared, system))

    if pending:
        solutions = solve_weighted_least_squares_batch(
            [system for _, _, system in pending],
            weight_function=gaussian_residual_weights,
            max_iterations=localizer.max_iterations,
            tolerance_m=localizer.tolerance_m,
        )
        for (index, prepared, system), solution in zip(pending, solutions):
            try:
                results[index] = estimator.report(
                    localizer._finalize_solution(prepared, system, solution)
                )
            except ValueError as error:
                results[index] = error
                _note_member_error(index, error)
    final: List[MemberResult] = []
    for result in results:
        if result is None:  # pragma: no cover - every slot is filled above
            raise RuntimeError("batch execution left an unfilled result slot")
        final.append(result)
    return final
