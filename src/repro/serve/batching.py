"""Group keys and the fused batch executor of the serving engine.

The engine's dispatch unit is a *group*: requests sharing
``(estimator, config_hash, dim)``. Members of one group run through one
estimator configuration, so a batchable group — batch LION with the WLS
solver — collapses into a single fused dispatch: batched
validation/preprocess/preparation across the whole group
(:func:`repro.core.batch_prepare.prepare_batch` — stacked unwrap and
smoothing, geometry through the cross-call trajectory-template cache),
pair selection and radical-row geometry through the cross-call recipe
cache of :mod:`repro.core.sweep` (concurrent requests usually observe
one deployment trajectory, so both caches amortize to dict lookups), and
one stacked IRLS over every member's system. The float64 default runs
:func:`repro.core.solvers.solve_weighted_least_squares_batch`, whose
solutions are bit-identical to the scalar solver; the opt-in float32
path (``ServeConfig(dtype="float32")``) assembles padded single-precision
stacks straight from the cached recipe geometry and solves them through
the normal-equation GEMM kernel
(:func:`repro.core.solvers.solve_weighted_least_squares_fast_batch`),
trading bit-exactness for throughput within property-tested bounds. A
member that fails preparation or assembly carries its ``ValueError`` in
the result slot — the engine resolves it through the scalar path so one
bad request degrades alone.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batch_prepare import PreparedMember, prepare_batch
from repro.core.localizer import LionLocalizer, LocalizationResult, PreparedScan
from repro.core.lowerdim import RecoveryResult
from repro.core.solvers import (
    Solution,
    solve_weighted_least_squares_batch,
    solve_weighted_least_squares_fast_batch,
)
from repro.core.sweep import _AssemblyRecipe, cached_assembly_recipe
from repro.core.system import LinearSystem
from repro.core.weights import gaussian_residual_weights
from repro.obs import current_span, tracing_enabled
from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.pipeline.estimators import LionEstimator

#: One dispatch group: ``(estimator name, config hash, dim)``.
GroupKey = Tuple[str, str, int]

#: Per-member outcome of a fused dispatch: the report, or the
#: ``ValueError`` the scalar path would raise for that member.
MemberResult = Union[EstimationReport, ValueError]


def group_key(name: str, config: EstimatorConfig, config_hash: str) -> GroupKey:
    """Dispatch-group key of one request.

    ``dim`` is part of the key even though it is already folded into the
    config hash: it keeps the key self-describing for metrics labels and
    guards against hash-collision pathologies joining 2D and 3D members.
    Configs without a ``dim`` (scan-frame baselines) key as 0.
    """
    return (name, config_hash, int(getattr(config, "dim", 0)))


def is_batchable(name: str, config: EstimatorConfig) -> bool:
    """Whether requests of this estimator/config fuse into one solve.

    Batch LION with the WLS solver is the (paper-default) fused path; its
    IRLS batch kernel is pinned bit-identical to the scalar solver.
    Everything else — grid searches, streaming, scan-frame baselines, the
    plain-LS variant — dispatches per request.
    """
    return name == "lion" and getattr(config, "method", None) == "wls"


def _solve_float32(
    pending: Sequence[Tuple[int, PreparedScan, _AssemblyRecipe]],
) -> Tuple[List[Solution], List[LinearSystem], List[Dict[str, Any]]]:
    """Pad the pending members' float32 systems and run the GEMM kernel.

    Assembly goes straight from each recipe's cached float32 geometry and
    the member's float32 ``delta_d`` into the padded stack — no float64
    :class:`LinearSystem` detour. The returned systems are views into the
    stack (single precision), carried on each report's ``raw.system``
    for diagnostics. The per-member diagnostic scalars (mean residual,
    mean |residual|, iteration counts) come back as ready-made dicts,
    computed over the padded stacks in a handful of vector ops instead of
    per-member :class:`Solution` property reductions.
    """
    counts = np.array([recipe.index_i.size for _, _, recipe in pending])
    max_rows = int(counts.max())
    dim = pending[0][2].dim
    columns = dim + 1
    matrices = np.zeros((len(pending), max_rows, columns), dtype=np.float32)
    rhs = np.zeros((len(pending), max_rows), dtype=np.float32)
    mask = np.arange(max_rows)[np.newaxis, :] < counts[:, np.newaxis]
    # Members resolved from the same cached recipe (the common serve case:
    # one deployment trajectory) share index arrays and geometry, so their
    # rows assemble in one vector op per group instead of one per member.
    by_recipe: Dict[int, List[int]] = {}
    for slot, (_, _, recipe) in enumerate(pending):
        by_recipe.setdefault(id(recipe), []).append(slot)
    for slots in by_recipe.values():
        recipe = pending[slots[0]][2]
        spatial32, squared32 = recipe.geometry32()
        rows = recipe.index_i.size
        deltas = np.stack([pending[slot][1].delta_d for slot in slots])
        di = deltas[:, recipe.index_i]
        dj = deltas[:, recipe.index_j]
        idx = np.asarray(slots)
        matrices[idx, :rows, :dim] = spatial32
        matrices[idx, :rows, dim] = 2.0 * (di - dj)
        rhs[idx, :rows] = squared32 - di * di + dj * dj
    solutions = solve_weighted_least_squares_fast_batch(matrices, rhs, mask)
    systems = [
        LinearSystem(
            matrix=matrices[slot, : counts[slot]],
            rhs=rhs[slot, : counts[slot]],
            dim=dim,
        )
        for slot in range(len(pending))
    ]
    # Batched diagnostics: residuals of the *final* estimates (ejected
    # members included — their scalar-solved estimates drop back into the
    # stack) normalized by row norms, then masked weighted/unweighted
    # means, all over the padded (batch, rows) arrays at once.
    estimates = np.stack(
        [solution.estimate for solution in solutions]
    ).astype(np.float32)
    residuals = np.einsum("bmc,bc->bm", matrices, estimates) - rhs
    residuals[~mask] = 0.0
    norms = np.sqrt(np.einsum("bmc,bmc->bm", matrices, matrices))
    norms[norms == 0.0] = 1.0
    normalized = residuals / norms
    weights = np.zeros_like(rhs)
    for slot, solution in enumerate(solutions):
        weights[slot, : counts[slot]] = solution.weights
    weight_totals = weights.sum(axis=1, dtype=np.float64)
    weighted_sums = (weights * normalized).sum(axis=1, dtype=np.float64)
    counts_f = counts.astype(np.float64)
    plain_means = normalized.sum(axis=1, dtype=np.float64) / counts_f
    denominators = np.where(weight_totals > 0.0, weight_totals, 1.0)
    mean_residuals = np.where(
        weight_totals > 0.0, weighted_sums / denominators, plain_means
    )
    mean_abs = np.abs(normalized).sum(axis=1, dtype=np.float64) / counts_f
    diagnostics: List[Dict[str, Any]] = [
        {
            "mean_residual": float(mean_residuals[slot]),
            "mean_abs_residual": float(mean_abs[slot]),
            "iterations": int(solution.iterations),
            "converged": bool(solution.converged),
        }
        for slot, solution in enumerate(solutions)
    ]
    return solutions, systems, diagnostics


def _finalize_float32_batch(
    localizer: LionLocalizer,
    pending: Sequence[Tuple[int, PreparedScan, _AssemblyRecipe]],
    solutions: Sequence[Solution],
    systems: Sequence[LinearSystem],
) -> List[LocalizationResult]:
    """Batched ``_finalize_solution``: recovery + frame rotation as stacks.

    The scalar finalize is ~30µs/member of small-array numpy dispatch
    (per-member ``vstack``, 2x2 rotations, per-member sqrt). Here the
    missing-axis recovery runs once per distinct axis over all affected
    members, and the rotate-back runs once per shared rotation matrix
    (template-cached members share the object), leaving only dataclass
    construction per member. Semantics match
    :meth:`LionLocalizer._finalize_solution` exactly — same candidate
    ordering, same radicand clipping, same pre-rotation recovery frame.
    """
    dim = localizer.dim
    estimates = np.stack([solution.estimate for solution in solutions]).astype(
        np.float64
    )
    positions = estimates[:, :dim].copy()
    reference_distances = estimates[:, dim]
    clipped = np.maximum(reference_distances, 0.0)
    reference_positions = np.stack(
        [
            prepared.solve_points[prepared.reference_index]
            for _, prepared, _ in pending
        ]
    )
    recoveries: List[RecoveryResult | None] = [None] * len(pending)
    by_axis: Dict[int, List[int]] = {}
    for slot, (_, prepared, _) in enumerate(pending):
        if prepared.missing_axis is not None:
            by_axis.setdefault(prepared.missing_axis, []).append(slot)
    for axis, slots in by_axis.items():
        idx = np.asarray(slots)
        observed = [a for a in range(dim) if a != axis]
        in_plane = positions[idx][:, observed] - reference_positions[idx][:, observed]
        radicands = clipped[idx] ** 2 - np.einsum("ij,ij->i", in_plane, in_plane)
        offsets = np.sqrt(np.maximum(radicands, 0.0))
        high = positions[idx].copy()
        high[:, axis] = reference_positions[idx, axis] + offsets
        low = positions[idx].copy()
        low[:, axis] = reference_positions[idx, axis] - offsets
        chosen = high if localizer.positive_side else low
        candidates = np.stack([high, low], axis=1)
        positions[idx] = chosen
        for row, slot in enumerate(slots):
            recoveries[slot] = RecoveryResult(
                position=chosen[row],
                candidates=candidates[row],
                radicand=float(radicands[row]),
            )
    by_rotation: Dict[int, Tuple[PreparedScan, List[int]]] = {}
    for slot, (_, prepared, _) in enumerate(pending):
        if prepared.rotation is not None and prepared.frame_origin is not None:
            entry = by_rotation.setdefault(id(prepared.rotation), (prepared, []))
            entry[1].append(slot)
    for prepared, slots in by_rotation.values():
        idx = np.asarray(slots)
        rotation = prepared.rotation
        origin = prepared.frame_origin
        assert rotation is not None and origin is not None
        # rotation.T @ p == p @ rotation, batched over all member rows.
        positions[idx] = positions[idx] @ rotation + origin
        reference_positions[idx] = reference_positions[idx] @ rotation + origin
    results: List[LocalizationResult] = []
    for slot, ((_, prepared, _), solution, system) in enumerate(
        zip(pending, solutions, systems)
    ):
        results.append(
            LocalizationResult(
                position=positions[slot],
                reference_distance_m=float(reference_distances[slot]),
                solution=solution,
                system=system,
                recovered_axis=prepared.missing_axis,
                recovery=recoveries[slot],
                reference_position=reference_positions[slot],
            )
        )
    return results


def execute_batch(
    estimator: LionEstimator,
    requests: Sequence[EstimationRequest],
    request_ids: Optional[Sequence[Optional[str]]] = None,
    dtype: str = "float64",
) -> List[MemberResult]:
    """Run one batchable group through the fused prepare/pair/solve path.

    Returns one slot per request, in request order: the
    :class:`EstimationReport` (field-identical to
    ``estimator.estimate(request)`` on the float64 default), or the
    ``ValueError`` subclass that member raised during validation,
    preparation, or assembly. The batch solvers eject members they cannot
    handle (rank-deficient, singular, non-finite) to exact scalar solves
    internally, so a bad member never perturbs its neighbours.

    Args:
        estimator: the group's configured LION estimator.
        requests: the member requests, in batch order.
        request_ids: when given (one per request, ``None`` entries
            allowed), annotates the enclosing span with a ``member_error``
            event per failed slot, so a stitched request trace shows
            *which* member of a fused batch fell back and why.
        dtype: ``"float64"`` (bit-identical) or ``"float32"`` (the
            throughput pipeline: single-precision preprocess, assembly,
            and normal-equation IRLS, property-test-bounded accuracy).
    """

    def _note_member_error(index: int, error: ValueError) -> None:
        if request_ids is None or not tracing_enabled():
            return
        parent = current_span()
        if parent is not None:
            parent.add_event(
                kind="member_error",
                member=index,
                request_id=request_ids[index],
                error=type(error).__name__,
            )

    localizer = estimator.localizer
    use_float32 = dtype == "float32"
    results: List[MemberResult | None] = [None] * len(requests)
    members: List[PreparedMember] = prepare_batch(
        localizer, requests, dtype=np.float32 if use_float32 else np.float64
    )
    pending: List[Tuple[int, PreparedScan, _AssemblyRecipe]] = []
    for index, member in enumerate(members):
        if member.error is not None:
            results[index] = member.error
            _note_member_error(index, member.error)
            continue
        prepared = member.prepared
        assert prepared is not None
        try:
            recipe = cached_assembly_recipe(
                localizer,
                prepared,
                localizer.interval_m,
                member.scan_key,
                member.mask_key,
            )
        except ValueError as error:
            results[index] = error
            _note_member_error(index, error)
            continue
        pending.append((index, prepared, recipe))

    if pending:
        if use_float32:
            solutions, systems, diagnostics = _solve_float32(pending)
            finalized = _finalize_float32_batch(localizer, pending, solutions, systems)
            for slot, ((index, prepared, _), result) in enumerate(
                zip(pending, finalized)
            ):
                member_diag = diagnostics[slot]
                member_diag["recovered_axis"] = prepared.missing_axis
                results[index] = estimator.report(result, diagnostics=member_diag)
        else:
            systems = [
                recipe.assemble(prepared.delta_d)
                for _, prepared, recipe in pending
            ]
            solutions = solve_weighted_least_squares_batch(
                systems,
                weight_function=gaussian_residual_weights,
                max_iterations=localizer.max_iterations,
                tolerance_m=localizer.tolerance_m,
            )
            for (index, prepared, _), solution, system in zip(
                pending, solutions, systems
            ):
                try:
                    results[index] = estimator.report(
                        localizer._finalize_solution(prepared, system, solution)
                    )
                except ValueError as error:
                    results[index] = error
                    _note_member_error(index, error)
    final: List[MemberResult] = []
    for result in results:
        if result is None:  # pragma: no cover - every slot is filled above
            raise RuntimeError("batch execution left an unfilled result slot")
        final.append(result)
    return final
