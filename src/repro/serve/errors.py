"""Typed failure modes of the serving engine.

Every rejection a caller can hit has its own exception class so callers
can branch on *kind* — retry-with-backoff on :class:`QueueFullError`,
give up on :class:`DeadlineExceededError`, re-create the engine on
:class:`EngineClosedError` — instead of parsing messages. Solver-side
failures (``DegenerateGeometryError``, ``TooFewReadsError``, shape
errors) are *not* wrapped: the engine surfaces exactly the exception the
scalar path would have raised, so moving a caller behind the engine
never changes its error handling.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every engine-originated failure."""


class QueueFullError(ServeError):
    """The bounded admission queue is at depth; the request was rejected.

    Explicit backpressure: the caller — not an unbounded buffer — decides
    whether to retry, shed, or block. Raised synchronously from
    ``submit``; nothing was enqueued.
    """


class DeadlineExceededError(ServeError):
    """The request's deadline passed before its batch was dispatched.

    Set as the ticket's exception; the request consumed queue space but
    no solve time.
    """


class EngineClosedError(ServeError):
    """The engine is closed (or closing) and admits no new requests."""
