"""Typed failure modes of the serving engine.

Every rejection a caller can hit has its own exception class so callers
can branch on *kind* — retry-with-backoff on :class:`QueueFullError`,
give up on :class:`DeadlineExceededError`, re-create the engine on
:class:`EngineClosedError` — instead of parsing messages. Solver-side
failures (``DegenerateGeometryError``, ``TooFewReadsError``, shape
errors) are *not* wrapped: the engine surfaces exactly the exception the
scalar path would have raised, so moving a caller behind the engine
never changes its error handling.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every engine-originated failure."""


class QueueFullError(ServeError):
    """The bounded admission queue is at depth; the request was rejected.

    Explicit backpressure: the caller — not an unbounded buffer — decides
    whether to retry, shed, or block. Raised synchronously from
    ``submit``; nothing was enqueued.
    """


class DeadlineExceededError(ServeError):
    """The request's deadline passed before its batch was dispatched.

    Set as the ticket's exception; the request consumed queue space but
    no solve time.
    """


class EngineClosedError(ServeError):
    """The engine is closed (or closing) and admits no new requests.

    The network layer reuses this for a draining server: once SIGTERM
    flips readiness, new submissions are refused with exactly the error
    an in-process caller of a closing engine would see.
    """


class WorkerDiedError(ServeError):
    """A shard's worker process exited without draining.

    Raised for requests that were in flight to the dead worker and for
    new requests routed to its shard; the front end maps it to 503 so a
    load balancer retries elsewhere while ``/readyz`` reports not-ready.
    """


class RemoteEstimationError(ServeError):
    """An estimation failed inside a worker process.

    Solver-side failures (``TooFewReadsError``, shape errors, ...) cross
    the process boundary as this wrapper because the original exception
    class may not be picklable or importable in the parent. The original
    type name and message are preserved verbatim.

    Attributes:
        exc_type: class name of the worker-side exception.
    """

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
