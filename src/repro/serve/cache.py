"""Thread-safe LRU result cache keyed on request fingerprints.

Serving workloads re-read the same deployment repeatedly — calibration
sweeps re-submit one scan while tuning, dashboards poll the latest
estimate — so an exact-match result cache in front of the solver turns
those repeats into O(1) lookups. Keys are
``(estimator, config_hash, request_fingerprint)`` content digests (see
:meth:`repro.pipeline.EstimationRequest.fingerprint`), so two requests
with equal field values hit the same entry regardless of object
identity, and any change to the scan bytes or the config misses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from repro.pipeline.contract import EstimationReport

#: ``(estimator name, config hash, request fingerprint)``.
CacheKey = Tuple[str, str, str]


class ResultCache:
    """Bounded LRU mapping of request fingerprints to finished reports.

    ``max_entries <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — the engine uses this for cache-off configs
    without branching at every call site.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[CacheKey, EstimationReport]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: CacheKey) -> EstimationReport | None:
        """Look up ``key``, refreshing its recency on a hit."""
        if self.max_entries <= 0:
            return None
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return report

    def put(self, key: CacheKey, report: EstimationReport) -> None:
        """Insert ``key``, evicting the least-recently-used overflow."""
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = report
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> Dict[str, int]:
        """Hit/miss/size counters (tests, ``ServeEngine.stats``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "max_entries": self.max_entries,
            }
