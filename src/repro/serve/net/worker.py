"""Shard worker: one process (or thread), one :class:`ServeEngine`.

The supervisor ships each request's arrays either inline (small
payloads, pickled straight through the pipe) or as
:class:`repro.parallel.SharedArraySpec` handles into shared memory the
parent owns (:class:`SharedArrayBundle`); the worker attaches, copies
out, and detaches immediately so the per-process attachment cache never
grows with request count. Responses are small (a position, diagnostics,
optionally residuals) and return pickled.

Concurrency shape: the main thread is a blocking ``recv`` loop that
submits into the engine and returns immediately; ticket completions —
fired on the engine's batcher thread — enqueue responses onto an
outbound queue drained by a single sender thread, because a
``multiprocessing`` connection tolerates one sender at a time. Pipe
FIFO ordering is the drain guarantee: every request the supervisor sent
before the drain control message is received (and submitted) before the
worker stops, and ``engine.close()`` resolves everything submitted, so
an accepted request is never lost.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs import (
    enable_metrics,
    enable_tracing,
    get_registry,
    metrics_enabled,
    take_request_spans,
    tracing_enabled,
)
from repro.parallel import SharedArraySpec, attach_shared_arrays, detach_shared_arrays
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.errors import (
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
)

# `multiprocessing.connection.Connection` is typed loosely on purpose:
# thread-mode workers receive one end of a Pipe created by the parent,
# process-mode workers receive it via the spawn pickling machinery.
Connection = Any


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker needs, picklable for spawn.

    Attributes:
        shard_index: this worker's shard number (labels, logs).
        engine: the hosted engine's :class:`ServeConfig`.
        metrics: enable :mod:`repro.obs` metrics in the worker.
        tracing: enable :mod:`repro.obs` span recording; dispatch spans
            of traced requests ship back on the response payload so the
            front end stitches them into one cross-process trace.
        drain_timeout_s: bound on the closing engine drain.
    """

    shard_index: int
    engine: ServeConfig = field(default_factory=ServeConfig)
    metrics: bool = True
    tracing: bool = False
    drain_timeout_s: float = 30.0


@dataclass(frozen=True)
class WireRequest:
    """One request crossing the supervisor -> worker pipe.

    Attributes:
        req_id: supervisor-unique id the response echoes back.
        name / config: estimator name and config-override dict.
        specs: shared-memory handles for large request arrays.
        inline: small request arrays, pickled directly.
        scalars: plain request fields.
        deadline_epoch: absolute ``time.time()`` deadline (comparable
            across processes) or ``None``.
        include_residuals: whether the response payload carries
            residuals.
        request_id: end-to-end request id from the HTTP ingress (empty
            when tracing is off); stamps the engine's dispatch span so
            worker spans stitch back to this request.
    """

    req_id: int
    name: str
    config: Optional[Dict[str, Any]]
    specs: Dict[str, SharedArraySpec]
    inline: Dict[str, np.ndarray]
    scalars: Dict[str, Any]
    deadline_epoch: Optional[float]
    include_residuals: bool
    request_id: str = ""


@dataclass(frozen=True)
class WireResponse:
    """One response crossing the worker -> supervisor pipe.

    ``ok`` responses carry a :func:`report_payload` dict; failures carry
    ``{"kind": ..., "exc_type": ..., "message": ...}`` with kind one of
    ``queue_full`` / ``deadline`` / ``draining`` / ``estimation``.
    """

    req_id: int
    ok: bool
    payload: Dict[str, Any]


def report_payload(report: EstimationReport, include_residuals: bool) -> Dict[str, Any]:
    """Picklable subset of an :class:`EstimationReport` for the wire.

    ``raw`` (the solver's native result object) never crosses the pipe —
    it may hold unpicklable internals and no network client needs it.
    """
    residuals: Optional[np.ndarray] = None
    if include_residuals and report.residuals is not None:
        residuals = np.asarray(report.residuals)
    return {
        "estimator": report.estimator,
        "config_hash": report.config_hash,
        "position": np.asarray(report.position),
        "reference_distance_m": report.reference_distance_m,
        "residuals": residuals,
        "diagnostics": report.diagnostics,
    }


def _error_payload(error: BaseException) -> Dict[str, Any]:
    if isinstance(error, QueueFullError):
        kind = "queue_full"
    elif isinstance(error, DeadlineExceededError):
        kind = "deadline"
    elif isinstance(error, EngineClosedError):
        kind = "draining"
    else:
        kind = "estimation"
    return {"kind": kind, "exc_type": type(error).__name__, "message": str(error)}


def _send_loop(conn: Connection, outbound: "queue.Queue[Optional[Any]]") -> None:
    """Single sender: drain the outbound queue into the pipe until ``None``."""
    while True:
        message = outbound.get()
        if message is None:
            return
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # parent is gone; keep draining
            return


def _decode_request(message: WireRequest) -> EstimationRequest:
    """Rebuild the :class:`EstimationRequest` from inline + shm arrays."""
    arrays: Dict[str, np.ndarray] = dict(message.inline)
    if message.specs:
        views = attach_shared_arrays(dict(message.specs))
        try:
            for name, view in views.items():
                if view is not None:
                    arrays[name] = np.array(view)
        finally:
            detach_shared_arrays(dict(message.specs))
    return EstimationRequest(**arrays, **message.scalars)


def _submit(
    engine: ServeEngine,
    message: WireRequest,
    outbound: "queue.Queue[Optional[Any]]",
) -> None:
    """Admit one wire request; completions enqueue the response."""
    try:
        request = _decode_request(message)
        deadline_s: Optional[float] = None
        if message.deadline_epoch is not None:
            # An already-expired deadline still goes through the engine so
            # the ticket resolves with the engine's own DeadlineExceededError.
            deadline_s = max(message.deadline_epoch - time.time(), 1e-9)
        ticket = engine.submit(
            message.name,
            request,
            config=message.config,
            deadline_s=deadline_s,
            request_id=message.request_id or None,
        )
    except Exception as error:  # noqa: BLE001 - every failure must answer
        outbound.put(WireResponse(message.req_id, False, _error_payload(error)))
        return

    req_id = message.req_id
    include_residuals = message.include_residuals
    request_id = message.request_id

    def _done(future: Any) -> None:
        error = future.exception()
        if error is None:
            payload = report_payload(future.result(), include_residuals)
            if request_id and tracing_enabled():
                spans = take_request_spans(request_id)
                if spans:
                    payload["trace"] = spans
            outbound.put(WireResponse(req_id, True, payload))
        else:
            outbound.put(WireResponse(req_id, False, _error_payload(error)))

    ticket.add_done_callback(_done)


def worker_main(conn: Connection, config: WorkerConfig) -> None:
    """Entry point of one shard worker (process target or thread target).

    Protocol (supervisor side: :mod:`repro.serve.net.supervisor`):

    - in: :class:`WireRequest`, ``("metrics", mid)``, ``("stats", mid)``,
      ``("drain",)``
    - out: ``("ready", shard)``, :class:`WireResponse`,
      ``("metrics_res", mid, snapshot)``, ``("stats_res", mid, stats)``,
      and finally ``("drained", stats)``.
    """
    if config.metrics:
        enable_metrics()
    if config.tracing:
        enable_tracing()
    outbound: "queue.Queue[Optional[Any]]" = queue.Queue()
    sender = threading.Thread(
        target=_send_loop,
        args=(conn, outbound),
        name=f"repro-serve-net-sender-{config.shard_index}",
        daemon=True,
    )
    sender.start()
    engine = ServeEngine(config.engine)
    outbound.put(("ready", config.shard_index))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # supervisor is gone; drain what was accepted
            if isinstance(message, WireRequest):
                _submit(engine, message, outbound)
            elif isinstance(message, tuple) and message and message[0] == "metrics":
                snapshot = get_registry().snapshot() if metrics_enabled() else None
                outbound.put(("metrics_res", message[1], snapshot))
            elif isinstance(message, tuple) and message and message[0] == "stats":
                outbound.put(("stats_res", message[1], engine.stats()))
            elif isinstance(message, tuple) and message and message[0] == "drain":
                break
    finally:
        clean = engine.close(timeout=config.drain_timeout_s)
        stats = engine.stats()
        stats["shard"] = config.shard_index
        stats["drained_clean"] = clean
        outbound.put(("drained", stats))
        outbound.put(None)
        sender.join(timeout=5.0)
