"""Asyncio HTTP front end over the shard supervisor.

The server is a deliberately small hand-rolled HTTP/1.1 implementation
on ``asyncio`` streams — no web framework, because the surface is eight
routes and the dependency budget is zero:

- ``POST /v1/locate`` — parse, route via the supervisor, answer JSON.
- ``POST /v1/sessions`` / ``POST /v1/sessions/{id}/reads`` (NDJSON) /
  ``GET|DELETE /v1/sessions/{id}`` — the streaming session surface over
  one front-end :class:`repro.stream.SessionManager` (429 at capacity,
  503 while draining, lifecycle events in each response).
- ``GET /v1/calibrations`` / ``GET /v1/calibrations/{antenna}`` /
  ``POST /v1/calibrations`` — the calibration registry surface (fleet
  status, per-antenna version history, CAS commits; present only with
  ``calibration_store`` configured). A ``/v1/locate`` request naming
  ``antennas`` resolves to calibrated centers/offsets here, in the
  front end, before the shard hop.
- ``GET /healthz``    — liveness: 200 while the process runs.
- ``GET /readyz``     — readiness: 503 the moment draining starts (and
  while any shard is down), so load balancers stop sending *before* the
  listener closes (``drain_grace_s`` holds that window open).
- ``GET /metrics``    — merged Prometheus text across all shards.
- ``GET /statz``      — JSON per-shard engine stats.
- ``GET /slo``        — latency/error objectives as multi-window burn rates.
- ``GET /debug/timeseries`` — ring-buffer telemetry history (per-second
  request/error/shed rates, bucket-quantile latency, inflight/queue
  gauges), ``?window=<seconds>`` to narrow.
- ``GET /debug/traces`` — the flight recorder: the last N slow/errored
  stitched request traces (``?limit=<n>``); SIGUSR2 dumps it to disk.

Every request gets a ``request_id`` at ingress — a well-formed caller
``X-Request-Id`` wins, then the trace-id of a W3C ``traceparent``, then
a minted UUID — echoed back as an ``X-Request-Id`` response header.
With tracing on, ``/v1/locate`` assembles one stitched cross-process
trace per request: a ``serve.net.ingress`` root, a ``serve.net.route``
child for the shard round trip, and under it the worker's own dispatch
spans (``serve.batch``/``serve.scalar`` down to the solver), shipped
back on the wire response and grafted by request id.

Shutdown is a strict sequence — flip readiness, grace sleep, close the
listener, wait for in-flight HTTP exchanges, drain the session manager
(final windowed re-solves + departures for every live session), then
drain the supervisor (which flushes every worker engine). Requests that
were read off a socket before the listener closed always get real
answers: the supervisor only starts refusing after the in-flight set is
empty.

Three entry points share :class:`NetServer`: ``await``-able use inside
an existing loop, :class:`ServerHandle` for tests and the benchmark
(loop in a background thread, synchronous start/stop), and
:func:`run_server` for the CLI (signal-driven, blocks until drained).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
import time
from dataclasses import replace
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, unquote

import numpy as np

from repro.calib import (
    CalibrationResolver,
    CalibrationStore,
    CorruptRecordError,
    UnknownAntennaError,
    VersionConflictError,
)
from repro.core.calibration import AntennaCalibration
from repro.obs import (
    FlightRecorder,
    HistorySampler,
    MetricsHistory,
    Sample,
    SloTracker,
    SpanNode,
    bind_request_id,
    counter_delta,
    enable_metrics,
    enable_tracing,
    error_rate_slo,
    gauge_values,
    get_logger,
    get_registry,
    histogram_delta,
    latency_slo,
    metrics_enabled,
    quantile,
    request_id_from_headers,
    tracing_enabled,
)
from repro.serve.net.config import NetServeConfig
from repro.serve.net.protocol import (
    BadRequestError,
    LocateCall,
    classify_error,
    encode_report_payload,
    error_body,
    parse_locate_body,
)
from repro.serve.net.sessions import (
    classify_session_error,
    feed_result_body,
    parse_reads_ndjson,
    parse_session_create,
)
from repro.serve.net.supervisor import ShardSupervisor
from repro.stream import SessionManager

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Shard-index buckets for the routing histogram: supports up to 64
#: shards with exact per-index counts at small shard counts.
_SHARD_BUCKETS = tuple(float(i) for i in range(17)) + (24.0, 32.0, 48.0, 64.0)

_logger = get_logger("serve.net")


def derive_serve_sample(sample: Sample, route: str = "/v1/locate") -> Dict[str, Any]:
    """Dashboard-ready serving stats from one telemetry sample.

    The shape ``GET /debug/timeseries`` serves (and ``lion top`` renders):
    per-second request/error/shed rates over the sample interval,
    bucket-interpolated latency quantiles (``None`` when the interval saw
    no requests), the summed inflight/queue-depth gauges, and the
    streaming-session lane (live sessions, read/event ingest rates).
    """

    def on_route(labels: Dict[str, str]) -> bool:
        return labels.get("route") == route

    def on_route_error(labels: Dict[str, str]) -> bool:
        return on_route(labels) and labels.get("status", "").startswith(("4", "5"))

    dt = max(sample.dt, 1e-9)
    requests = counter_delta(sample, "serve.net.requests_total", on_route)
    errors = counter_delta(sample, "serve.net.requests_total", on_route_error)
    shed = counter_delta(sample, "serve.net.shed_total")
    latency = histogram_delta(sample, "serve.net.request_seconds", on_route)
    p50 = quantile(latency, 0.5)
    p99 = quantile(latency, 0.99)
    inflight = sum(value for _, value in gauge_values(sample, "serve.net.shard_inflight"))
    queue_depth = sum(value for _, value in gauge_values(sample, "serve.queue_depth"))
    sessions = sum(
        value for _, value in gauge_values(sample, "serve.stream.sessions_active")
    )
    stream_reads = counter_delta(sample, "serve.stream.reads_total")
    stream_events = counter_delta(sample, "serve.stream.events_total")
    template_hits = counter_delta(sample, "serve.template_cache_hits")
    template_total = template_hits + counter_delta(
        sample, "serve.template_cache_misses"
    )
    pair_hits = counter_delta(
        sample, "adaptive.pair_cache_total", lambda labels: labels.get("result") == "hit"
    )
    pair_total = counter_delta(sample, "adaptive.pair_cache_total")
    return {
        "t": sample.t,
        "dt": round(sample.dt, 6),
        "req_s": round(requests / dt, 3),
        "err_s": round(errors / dt, 3),
        "shed_s": round(shed / dt, 3),
        "p50_ms": None if p50 is None else round(p50 * 1e3, 3),
        "p99_ms": None if p99 is None else round(p99 * 1e3, 3),
        "inflight": inflight,
        "queue_depth": queue_depth,
        "sessions": sessions,
        "stream_reads_s": round(stream_reads / dt, 3),
        "stream_events_s": round(stream_events / dt, 3),
        # Geometry-cache hit rates over this interval (None when the
        # interval saw no probes): the repeat-trajectory signal of the
        # fused batch path (template cache in repro.core.batch_prepare,
        # pair cache in repro.core.sweep).
        "template_hit_rate": (
            None if template_total == 0 else round(template_hits / template_total, 4)
        ),
        "pair_hit_rate": (
            None if pair_total == 0 else round(pair_hits / pair_total, 4)
        ),
    }


class _HttpError(Exception):
    """Terminate one exchange with a fixed status (parser-level errors)."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.body = error_body(kind, message)


class NetServer:
    """The asyncio server; owns the listener and one :class:`ShardSupervisor`."""

    def __init__(self, config: NetServeConfig) -> None:
        self.config = config
        self._supervisor = ShardSupervisor(config)
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: "Set[asyncio.StreamWriter]" = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._drained = False
        self._drain_stats: List[Dict[str, Any]] = []
        # Sessions live in the front-end process: windowed re-solves run
        # on the serving thread pool, so their events and
        # ``serve.stream.*`` series land in the registry ``/metrics``
        # merges.
        self._sessions = SessionManager(
            defaults=config.stream, max_sessions=config.max_sessions
        )
        self._session_drain: Optional[Dict[str, Any]] = None
        self._sweep_task: Optional["asyncio.Task[None]"] = None
        capacity = int(math.ceil(config.history_window_s / config.history_cadence_s)) + 8
        self._history = MetricsHistory(capacity=capacity)
        self._recorder = FlightRecorder(
            capacity=config.recorder_capacity,
            slow_threshold_s=config.recorder_slow_ms / 1e3,
        )
        self._slo = SloTracker(
            self._history,
            [latency_slo(config.slo_p99_ms), error_rate_slo(config.slo_error_rate)],
        )
        self._sampler = HistorySampler(
            source=lambda: self._supervisor.merged_metrics().snapshot(),
            history=self._history,
            cadence_s=config.history_cadence_s,
            on_sample=self._evaluate_slo,
        )
        # The calibration registry lives in the front-end process:
        # ``antennas`` on /v1/locate resolve here (generation-stamped
        # cache) so workers only ever see explicit arrays — no
        # cross-process store synchronisation.
        self._calib_store: Optional[CalibrationStore] = None
        self._calib_resolver: Optional[CalibrationResolver] = None
        if config.calibration_store is not None:
            self._calib_store = CalibrationStore(config.calibration_store, create=True)
            self._calib_resolver = CalibrationResolver(self._calib_store)

    def _evaluate_slo(self) -> None:
        """Per-sample SLO pass so budget-burn transitions hit the log."""
        self._slo.evaluate()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sockets = self._server.sockets
        return int(sockets[0].getsockname()[1])

    @property
    def supervisor(self) -> ShardSupervisor:
        return self._supervisor

    @property
    def sessions(self) -> SessionManager:
        """The streaming-session manager behind ``/v1/sessions``."""
        return self._sessions

    @property
    def calibration_store(self) -> Optional[CalibrationStore]:
        """The calibration registry behind ``/v1/calibrations`` (or None)."""
        return self._calib_store

    @property
    def recorder(self) -> FlightRecorder:
        """The slow/errored-request flight recorder behind ``/debug/traces``."""
        return self._recorder

    @property
    def history(self) -> MetricsHistory:
        """The telemetry ring buffer behind ``/debug/timeseries``."""
        return self._history

    @property
    def sampler(self) -> HistorySampler:
        """The cadence thread feeding :attr:`history` (tests drive it)."""
        return self._sampler

    def dump_traces(self, path: Optional[str] = None) -> Tuple[str, int]:
        """Dump the flight recorder to disk; returns ``(path, count)``."""
        target = path or self.config.trace_dump_path
        count = self._recorder.dump(target)
        return target, count

    @property
    def drain_stats(self) -> List[Dict[str, Any]]:
        """Per-shard final engine stats; populated by :meth:`shutdown`."""
        return self._drain_stats

    async def start(self) -> None:
        """Boot the workers, then bind and start serving."""
        if self.config.metrics:
            enable_metrics()
        if self.config.tracing:
            enable_tracing()
        # Worker startup blocks on ready handshakes; keep the loop free.
        await asyncio.to_thread(self._supervisor.start)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_body_bytes + 65536,
        )
        if self.config.metrics:
            self._sampler.start()
        self._sweep_task = asyncio.create_task(self._sweep_sessions())

    async def _sweep_sessions(self) -> None:
        """Background idle sweep: depart sessions past ``depart_after_s``."""
        try:
            while True:
                await asyncio.sleep(self.config.session_sweep_cadence_s)
                await asyncio.to_thread(self._sessions.poll)
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> List[Dict[str, Any]]:
        """Graceful drain; returns per-shard final engine stats.

        Sequence: flip ``/readyz`` to 503 -> ``drain_grace_s`` (load
        balancers observe not-ready while the socket still accepts) ->
        close the listener -> wait for in-flight exchanges (bounded by
        ``drain_timeout_s``) -> drain the session manager (one final
        windowed re-solve and a ``TagDeparted(reason="drain")`` per live
        session; the summary lands in :attr:`session_drain`) -> drain
        the supervisor and workers. Idempotent: a second call returns
        the recorded stats.
        """
        if self._draining:
            if not self._drained:
                await self._wait_drained()
            return self._drain_stats
        self._draining = True
        await asyncio.to_thread(self._sampler.stop)
        if self.config.drain_grace_s > 0:
            await asyncio.sleep(self.config.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            pass
        for writer in list(self._connections):
            writer.close()
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            try:
                await self._sweep_task
            except asyncio.CancelledError:
                pass
        self._session_drain = await asyncio.to_thread(self._sessions.drain)
        self._drain_stats = await asyncio.to_thread(self._supervisor.drain)
        self._supervisor.close()
        self._drained = True
        return self._drain_stats

    @property
    def session_drain(self) -> Optional[Dict[str, Any]]:
        """Session-drain summary; populated by :meth:`shutdown`."""
        return self._session_drain

    async def _wait_drained(self) -> None:
        """Second ``shutdown`` caller: poll until the first finishes."""
        deadline = time.monotonic() + self.config.drain_timeout_s
        while not self._drained and time.monotonic() < deadline:
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: HTTP/1.1 exchanges with keep-alive."""
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as error:
                    await self._write_response(
                        writer, error.status, error.body, close=True
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                self._inflight += 1
                self._idle.clear()
                started = time.perf_counter()
                try:
                    status, response, extra = await self._dispatch(
                        method, path, headers, body
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                self._observe(path, status, time.perf_counter() - started)
                close = (
                    self._draining
                    or headers.get("connection", "").lower() == "close"
                )
                await self._write_response(
                    writer, status, response, extra_headers=extra, close=close
                )
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; ``None`` on a cleanly closed connection."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as error:
            raise _HttpError(400, "bad_request", "request line too long") from error
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "bad_request", "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as error:
            raise _HttpError(
                400, "bad_request", f"bad Content-Length: {length_text!r}"
            ) from error
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                "payload_too_large",
                f"body of {length} bytes exceeds the {self.config.max_body_bytes} limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        """Serialize and flush one response (JSON dict or str payloads)."""
        if isinstance(body, (dict, list)):
            payload = json.dumps(body).encode()
            content_type = "application/json"
        else:
            payload = str(body).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """Route one request; returns ``(status, body, extra headers)``.

        Resolves the request id from the inbound headers, binds it for
        structured logging across the handler, and — with tracing on —
        assembles the stitched trace of every ``/v1/locate`` exchange
        for the flight recorder. The id is echoed back on every response
        as ``X-Request-Id``.
        """
        path, _, query = path.partition("?")
        request_id, id_source = request_id_from_headers(headers)
        trace_children: List[SpanNode] = []
        routes: Dict[
            Tuple[str, str], Callable[[], Awaitable[Tuple[int, Any, Optional[Dict[str, str]]]]]
        ] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/readyz"): self._readyz,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/statz"): self._statz,
            ("GET", "/slo"): self._slo_route,
            ("GET", "/debug/timeseries"): lambda: self._debug_timeseries(query),
            ("GET", "/debug/traces"): lambda: self._debug_traces(query),
            ("POST", "/v1/locate"): lambda: self._locate(body, request_id, trace_children),
            ("GET", "/v1/calibrations"): self._calibrations_list,
            ("POST", "/v1/calibrations"): lambda: self._calibrations_commit(body),
        }
        handler = routes.get((method, path))
        if handler is None and path.startswith("/v1/calibrations/"):
            handler = self._calibration_route(method, path)
        if handler is None and path.startswith("/v1/sessions"):
            handler = self._session_route(method, path, body)
        if handler is None:
            if any(route_path == path for _, route_path in routes):
                return 405, error_body("method_not_allowed", f"{method} {path}"), None
            return 404, error_body("not_found", path), None
        traced = tracing_enabled() and path == "/v1/locate"
        started_epoch = time.time()
        started = time.perf_counter()
        extra: Optional[Dict[str, str]]
        try:
            with bind_request_id(request_id):
                status, payload, extra = await handler()
        except Exception as error:  # noqa: BLE001 - total mapping to HTTP
            if path.startswith("/v1/sessions"):
                status, payload = classify_session_error(error, self.config.retry_after_s)
            else:
                status, payload = classify_error(error, self.config.retry_after_s)
            extra = None
            if status == 429:
                # RFC 9110 Retry-After is delta-seconds (an integer);
                # the JSON body carries the precise float hint.
                extra = {"Retry-After": str(max(1, math.ceil(self.config.retry_after_s)))}
            if path == "/v1/locate":
                # Server-side failures are warnings; client/backpressure
                # outcomes (4xx) stay at debug so shedding under load
                # does not flood the log.
                log = _logger.warning if status >= 500 else _logger.debug
                log(
                    "locate request failed: status=%s kind=%s: %s",
                    status,
                    payload.get("error", {}).get("kind", "unknown"),
                    error,
                    extra={"request_id": request_id},
                )
        if traced:
            self._record_trace(
                request_id,
                id_source,
                path,
                status,
                started_epoch,
                time.perf_counter() - started,
                trace_children,
            )
        extra = dict(extra) if extra else {}
        extra["X-Request-Id"] = request_id
        return status, payload, extra

    def _record_trace(
        self,
        request_id: str,
        id_source: str,
        path: str,
        status: int,
        started_epoch: float,
        elapsed_s: float,
        children: List[SpanNode],
    ) -> None:
        """Assemble the ingress root span and offer it to the recorder."""
        ingress = SpanNode(
            name="serve.net.ingress",
            attributes={
                "request_id": request_id,
                "id_source": id_source,
                "route": path,
                "status": status,
            },
            start_s=started_epoch,
            end_s=started_epoch + elapsed_s,
            pid=os.getpid(),
            children=children,
        )
        self._recorder.consider(ingress, status=status, request_id=request_id, route=path)

    async def _healthz(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        return 200, {"status": "ok"}, None

    async def _readyz(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        if self._draining:
            return 503, {"status": "draining"}, None
        ok, reason = self._supervisor.ready()
        if ok:
            return 200, {"status": "ok", "shards": self.config.shards}, None
        return 503, {"status": "unready", "reason": reason}, None

    async def _metrics(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        if not self.config.metrics:
            return 200, "# metrics disabled\n", None
        text = await asyncio.to_thread(self._supervisor.prometheus_text)
        return 200, text, None

    async def _statz(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        stats = await asyncio.to_thread(self._supervisor.shard_stats)
        payload = {
            "shards": self.config.shards,
            "worker_mode": self.config.worker_mode,
            "draining": self._draining,
            "per_shard": stats,
            "sessions": self._sessions.stats(),
            "calibration": self._calibration_health(),
        }
        return 200, payload, None

    def _calibration_health(self) -> Dict[str, Any]:
        """The fleet-health rollup of ``/statz`` (cheap: no per-antenna
        detail — ``GET /v1/calibrations`` carries the full table)."""
        if self._calib_store is None or self._calib_resolver is None:
            return {"enabled": False}
        status = self._calib_store.fleet_status(
            max_age_s=self.config.calibration_max_age_s
        )
        return {
            "enabled": True,
            "generation": status["generation"],
            "antennas": status["antennas"],
            "versions_total": status["versions_total"],
            "stale_by_age": status["stale_by_age"],
            "resolver": self._calib_resolver.stats(),
        }

    async def _locate(
        self, body: bytes, request_id: str, trace_children: List[SpanNode]
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """The request path: parse -> route -> await the shard's answer.

        With tracing on, the worker ships its dispatch spans back on the
        response payload (keyed by ``request_id``); they are grafted
        under a ``serve.net.route`` span appended to ``trace_children``
        so :meth:`_dispatch` can hang the whole subtree off the ingress
        root.
        """
        started = time.perf_counter()
        started_epoch = time.time()
        traced = tracing_enabled()
        call = parse_locate_body(body, max_deadline_s=self.config.max_deadline_s)
        if "antennas" in call.scalars:
            call = self._resolve_call_calibration(call)
        future, shard = self._supervisor.submit(
            call, request_id=request_id if traced else None
        )
        if metrics_enabled():
            get_registry().histogram(
                "serve.net.shard_route", buckets=_SHARD_BUCKETS
            ).observe(float(shard))
        payload = await asyncio.wrap_future(future)
        server_ms = (time.perf_counter() - started) * 1e3
        worker_trace = payload.pop("trace", None)
        if traced:
            trace_children.append(
                SpanNode(
                    name="serve.net.route",
                    attributes={
                        "request_id": request_id,
                        "shard": shard,
                        "estimator": call.estimator,
                    },
                    start_s=started_epoch,
                    end_s=time.time(),
                    pid=os.getpid(),
                    children=[SpanNode.from_dict(p) for p in (worker_trace or [])],
                )
            )
        return (
            200,
            encode_report_payload(payload, shard, server_ms, request_id=request_id),
            None,
        )

    # ------------------------------------------------------------------
    # calibration registry
    # ------------------------------------------------------------------
    def _resolve_call_calibration(self, call: LocateCall) -> LocateCall:
        """Resolve ``antennas`` into explicit arrays before routing.

        Workers never see antenna names: the registry lives here in the
        front end, so resolution must happen before the shard hop. The
        resolved call is bit-identical to one the client could have sent
        with explicit arrays — and caches identically in the workers'
        engines, since the request fingerprint covers the arrays.

        Raises:
            BadRequestError: no calibration store is configured.
            UnknownAntennaError: an antenna the store has no records for
                (mapped to 404 by :func:`classify_error`).
        """
        if self._calib_resolver is None:
            raise BadRequestError(
                "request names 'antennas' but the server has no calibration "
                "store configured (NetServeConfig.calibration_store)"
            )
        scalars = dict(call.scalars)
        antennas = tuple(scalars.pop("antennas"))
        arrays = dict(call.arrays)
        needs_positions = "positions" not in arrays
        needs_offsets = "offset_corrections_rad" not in arrays
        if needs_positions or needs_offsets:
            bounds = scalars.get("bounds")
            dim = len(bounds) if bounds else 3
            centers, offsets = self._calib_resolver.lookup(antennas, dim)
            if needs_positions:
                arrays["positions"] = np.asarray(centers)
            if needs_offsets:
                arrays["offset_corrections_rad"] = np.asarray(offsets)
        return replace(call, arrays=arrays, scalars=scalars)

    async def _calibrations_list(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``GET /v1/calibrations``: the full fleet status table."""
        if self._calib_store is None:
            return 404, error_body("not_found", "no calibration store configured"), None
        status = await asyncio.to_thread(
            self._calib_store.fleet_status, self.config.calibration_max_age_s
        )
        return 200, status, None

    async def _calibrations_commit(
        self, body: bytes
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``POST /v1/calibrations``: commit one calibration version.

        Body: ``{"antenna": ..., "physical_center": [x,y,z],
        "estimated_center": [x,y,z], "phase_offset_rad": ...}`` plus
        optional ``source`` / ``reads`` / ``residual_rms_m`` /
        ``config_hash`` / ``manifest`` / ``expected_version`` (the CAS
        token; 409 on conflict). The store assigns the version.
        """
        if self._calib_store is None:
            return 404, error_body("not_found", "no calibration store configured"), None
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise BadRequestError(f"body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise BadRequestError("body must be a JSON object")
        try:
            calibration = AntennaCalibration(
                antenna_name=str(payload["antenna"]),
                physical_center=np.asarray(payload["physical_center"], dtype=float),
                estimated_center=np.asarray(payload["estimated_center"], dtype=float),
                phase_offset_rad=float(payload["phase_offset_rad"]),
            )
            expected_version = payload.get("expected_version")
            if expected_version is not None:
                expected_version = int(expected_version)
            record = await asyncio.to_thread(
                lambda: self._calib_store.commit(  # type: ignore[union-attr]
                    calibration,
                    source=str(payload.get("source", "manual")),
                    reads=None if payload.get("reads") is None else int(payload["reads"]),
                    residual_rms_m=(
                        None
                        if payload.get("residual_rms_m") is None
                        else float(payload["residual_rms_m"])
                    ),
                    config_hash=(
                        None
                        if payload.get("config_hash") is None
                        else str(payload["config_hash"])
                    ),
                    manifest=payload.get("manifest"),
                    expected_version=expected_version,
                )
            )
        except VersionConflictError as error:
            return (
                409,
                {
                    **error_body("version_conflict", str(error)),
                    "antenna": error.antenna,
                    "expected": error.expected,
                    "actual": error.actual,
                },
                None,
            )
        except CorruptRecordError as error:
            raise BadRequestError(str(error)) from error
        except (KeyError, TypeError, ValueError) as error:
            raise BadRequestError(f"malformed calibration payload: {error}") from error
        if metrics_enabled():
            get_registry().counter(
                "serve.calib.commits_total", source=record.source
            ).inc()
        return 201, record.to_dict(), None

    def _calibration_route(
        self, method: str, path: str
    ) -> Optional[Callable[[], Awaitable[Tuple[int, Any, Optional[Dict[str, str]]]]]]:
        """``GET /v1/calibrations/{antenna}``: full version history."""
        antenna = unquote(path[len("/v1/calibrations/"):])
        if not antenna or "/" in antenna:
            return None

        async def method_not_allowed() -> Tuple[int, Any, Optional[Dict[str, str]]]:
            return 405, error_body("method_not_allowed", f"{method} {path}"), None

        if method != "GET":
            return method_not_allowed

        async def history() -> Tuple[int, Any, Optional[Dict[str, str]]]:
            if self._calib_store is None:
                return (
                    404,
                    error_body("not_found", "no calibration store configured"),
                    None,
                )
            try:
                records = await asyncio.to_thread(self._calib_store.history, antenna)
            except UnknownAntennaError as error:
                return 404, error_body("unknown_antenna", str(error)), None
            return (
                200,
                {
                    "antenna": antenna,
                    "latest_version": records[-1].version,
                    "versions": [record.to_dict() for record in records],
                },
                None,
            )

        return history

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def _session_route(
        self, method: str, path: str, body: bytes
    ) -> Optional[Callable[[], Awaitable[Tuple[int, Any, Optional[Dict[str, str]]]]]]:
        """Resolve one ``/v1/sessions[...]`` path to its handler.

        ``None`` falls through to the router's 404; a known path with
        the wrong method returns a handler that answers 405 (the router
        cannot see dynamic paths in its exact-match table).
        """
        parts = [part for part in path.split("/") if part]
        if parts[:2] != ["v1", "sessions"]:
            return None

        async def method_not_allowed() -> Tuple[int, Any, Optional[Dict[str, str]]]:
            return 405, error_body("method_not_allowed", f"{method} {path}"), None

        if len(parts) == 2:
            if method == "POST":
                return lambda: self._session_create(body)
            return method_not_allowed
        if len(parts) == 3:
            session_id = parts[2]
            if method == "GET":
                return lambda: self._session_get(session_id)
            if method == "DELETE":
                return lambda: self._session_close(session_id)
            return method_not_allowed
        if len(parts) == 4 and parts[3] == "reads":
            if method == "POST":
                return lambda: self._session_feed(parts[2], body)
            return method_not_allowed
        return None

    async def _session_create(
        self, body: bytes
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``POST /v1/sessions``: open one streaming session (201)."""
        if self._draining:
            return 503, error_body("draining", "server is draining"), None
        tag, antenna, session_id, config = parse_session_create(body, self.config.stream)
        session = await asyncio.to_thread(
            self._sessions.open_session, tag, antenna, config, session_id
        )
        return 201, session.snapshot(), None

    async def _session_feed(
        self, session_id: str, body: bytes
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``POST /v1/sessions/{id}/reads``: NDJSON chunk ingest.

        Reads apply under the session's lock in chunk order; the
        response carries the triggered lifecycle events and the latest
        estimate, so a client tails its tag without a second poll.
        """
        if self._draining:
            return 503, error_body("draining", "server is draining"), None
        reads = parse_reads_ndjson(body)
        result = await asyncio.to_thread(self._sessions.feed, session_id, reads)
        return 200, feed_result_body(result), None

    async def _session_get(
        self, session_id: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``GET /v1/sessions/{id}``: the session snapshot."""
        session = self._sessions.get_session(session_id)
        return 200, session.snapshot(), None

    async def _session_close(
        self, session_id: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``DELETE /v1/sessions/{id}``: final re-solve, then departure."""
        result = await asyncio.to_thread(self._sessions.close_session, session_id)
        return 200, feed_result_body(result), None

    async def _slo_route(self) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        report = await asyncio.to_thread(self._slo.evaluate)
        return 200, report, None

    async def _debug_timeseries(
        self, query: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        window_s = self.config.history_window_s
        params = parse_qs(query)
        if "window" in params:
            try:
                window_s = float(params["window"][0])
            except ValueError:
                return (
                    400,
                    error_body("bad_request", f"bad window: {params['window'][0]!r}"),
                    None,
                )
            if window_s <= 0:
                return 400, error_body("bad_request", "window must be positive"), None
        samples = self._history.window(window_s)
        return (
            200,
            {
                "cadence_s": self.config.history_cadence_s,
                "window_s": window_s,
                "samples": [derive_serve_sample(sample) for sample in samples],
            },
            None,
        )

    async def _debug_traces(self, query: str) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        params = parse_qs(query)
        limit: Optional[int] = None
        if "limit" in params:
            try:
                limit = int(params["limit"][0])
            except ValueError:
                return (
                    400,
                    error_body("bad_request", f"bad limit: {params['limit'][0]!r}"),
                    None,
                )
        return (
            200,
            {"stats": self._recorder.stats(), "traces": self._recorder.snapshot(limit)},
            None,
        )

    def _observe(self, path: str, status: int, elapsed_s: float) -> None:
        if not metrics_enabled():
            return
        registry = get_registry()
        registry.counter(
            "serve.net.requests_total", route=path, status=status
        ).inc()
        registry.histogram("serve.net.request_seconds", route=path).observe(elapsed_s)


class ServerHandle:
    """Run a :class:`NetServer` on a background-thread event loop.

    Synchronous facade for tests, the benchmark, and notebooks::

        with ServerHandle(NetServeConfig(port=0, shards=2)) as handle:
            url = f"http://127.0.0.1:{handle.port}"
            ...

    ``stop()`` performs the full graceful drain and returns the
    per-shard final engine stats.
    """

    def __init__(self, config: NetServeConfig) -> None:
        self.config = config
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[NetServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._port: Optional[int] = None
        self._drain_stats: List[Dict[str, Any]] = []

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("server is not started")
        return self._port

    @property
    def server(self) -> NetServer:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server

    def start(self) -> "ServerHandle":
        """Boot the loop thread; blocks until the listener is bound."""
        if self._thread is not None:
            raise RuntimeError("handle already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()),
            name="repro-serve-net-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(self.config.ready_timeout_s + 30.0):
            raise RuntimeError("server did not come up in time")
        if self._error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(f"server failed to start: {self._error}") from self._error
        return self

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = NetServer(self.config)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._error = error
            self._ready.set()
            return
        self._server = server
        self._port = server.port
        self._ready.set()
        await self._stop_event.wait()
        self._drain_stats = await server.shutdown()

    def request_shutdown(self) -> None:
        """Start the graceful drain without waiting for it (signal-style)."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed: stop() is idempotent
                pass

    def stop(self, timeout: float = 120.0) -> List[Dict[str, Any]]:
        """Graceful drain and join; returns per-shard final engine stats."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("server loop did not stop in time")
        return self._drain_stats

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


async def _serve_until_signalled(config: NetServeConfig) -> List[Dict[str, Any]]:
    """CLI body: serve until SIGTERM/SIGINT, then drain gracefully."""
    import signal

    server = NetServer(config)
    await server.start()
    print(
        f"lion serve: listening on http://{config.host}:{server.port} "
        f"shards={config.shards} worker_mode={config.worker_mode}",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            signal.signal(signum, lambda *_: stop.set())

    def _dump_traces() -> None:
        path, count = server.dump_traces()
        print(f"lion serve: dumped {count} traces to {path}", flush=True)

    if hasattr(signal, "SIGUSR2"):
        try:
            loop.add_signal_handler(signal.SIGUSR2, _dump_traces)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            pass
    await stop.wait()
    print("lion serve: draining", flush=True)
    stats = await server.shutdown()
    print(f"lion serve: drained {json.dumps(stats, default=str)}", flush=True)
    return stats


def run_server(config: NetServeConfig) -> int:
    """Blocking entry point for ``lion serve``; returns an exit code."""
    asyncio.run(_serve_until_signalled(config))
    return 0
