"""JSON wire contract of ``POST /v1/locate`` and the error taxonomy.

One request body carries everything :func:`repro.pipeline.estimate`
takes — the estimator name, optional config overrides, and the
:class:`EstimationRequest` fields (arrays as nested lists) — plus
serving controls (``deadline_ms``, ``include_residuals``)::

    {
      "estimator": "lion",
      "config": {"dim": 2, "max_iterations": 24},
      "request": {"positions": [[x, y], ...], "phases_rad": [...]},
      "deadline_ms": 250,
      "include_residuals": false
    }

Responses round-trip float64 exactly (``json`` serializes doubles via
``repr``), so a position served over the wire is **bit-identical** to
the in-process ``estimate()`` answer — the benchmark asserts this.

Every failure maps to one ``(HTTP status, kind)`` pair via
:func:`classify_error`, and the JSON error body always carries the kind,
so clients branch on structure, not message text. 429 bodies include
``retry_after_s`` and the response carries a ``Retry-After`` header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.calib.errors import UnknownAntennaError, VersionConflictError
from repro.serve.errors import (
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
    RemoteEstimationError,
    WorkerDiedError,
)

#: ndarray-valued :class:`EstimationRequest` fields (wire: nested lists).
ARRAY_FIELDS: Tuple[str, ...] = (
    "positions",
    "phases_rad",
    "segment_ids",
    "exclude_mask",
    "run_ids",
    "angles_rad",
    "initial_guess",
    "offset_corrections_rad",
)

#: Plain-value :class:`EstimationRequest` fields (wire: as-is).
SCALAR_FIELDS: Tuple[str, ...] = ("radius_m", "bounds", "reference_index")

#: String-tuple :class:`EstimationRequest` fields (wire: list of strings).
#: ``antennas`` names registry entries a calibration-wired front end
#: resolves into ``positions`` / ``offset_corrections_rad`` before
#: routing; see :mod:`repro.calib.resolver`.
STRING_TUPLE_FIELDS: Tuple[str, ...] = ("antennas",)


class BadRequestError(ValueError):
    """The request body is malformed (not JSON, wrong types, bad shapes)."""


@dataclass(frozen=True)
class LocateCall:
    """One parsed ``/v1/locate`` call, ready for the supervisor.

    Attributes:
        estimator: registry name.
        config: config-override dict (``None`` for method defaults).
        arrays: ndarray request fields, keyed by field name.
        scalars: plain request fields, keyed by field name.
        deadline_s: end-to-end deadline in seconds (``None`` = none).
        include_residuals: whether the response carries residuals.
    """

    estimator: str
    config: Optional[Dict[str, Any]]
    arrays: Dict[str, np.ndarray]
    scalars: Dict[str, Any]
    deadline_s: Optional[float]
    include_residuals: bool


def parse_locate_body(raw: bytes, max_deadline_s: Optional[float] = None) -> LocateCall:
    """Parse and validate one request body.

    Raises:
        BadRequestError: on any malformed input — the caller maps this
            to 400 without touching the supervisor.
    """
    try:
        body = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise BadRequestError(f"body is not valid JSON: {error}") from error
    if not isinstance(body, dict):
        raise BadRequestError(f"body must be a JSON object, got {type(body).__name__}")
    estimator = body.get("estimator")
    if not isinstance(estimator, str) or not estimator:
        raise BadRequestError("'estimator' must be a non-empty string")
    config = body.get("config")
    if config is not None and not isinstance(config, dict):
        raise BadRequestError("'config' must be a JSON object when given")
    request_fields = body.get("request")
    if not isinstance(request_fields, dict):
        raise BadRequestError("'request' must be a JSON object of request fields")
    unknown = sorted(
        set(request_fields)
        - set(ARRAY_FIELDS)
        - set(SCALAR_FIELDS)
        - set(STRING_TUPLE_FIELDS)
    )
    if unknown:
        raise BadRequestError(f"unknown request fields: {unknown}")

    arrays: Dict[str, np.ndarray] = {}
    for name in ARRAY_FIELDS:
        value = request_fields.get(name)
        if value is None:
            continue
        try:
            dtype: type = float
            if name in ("segment_ids", "run_ids"):
                dtype = int
            elif name == "exclude_mask":
                dtype = bool
            arrays[name] = np.asarray(value, dtype=dtype)
        except (TypeError, ValueError) as error:
            raise BadRequestError(f"request field {name!r} is not array-like: {error}") from error
    scalars: Dict[str, Any] = {}
    for name in SCALAR_FIELDS:
        value = request_fields.get(name)
        if value is not None:
            scalars[name] = value
    if "bounds" in scalars:
        try:
            scalars["bounds"] = tuple(
                (float(low), float(high)) for low, high in scalars["bounds"]
            )
        except (TypeError, ValueError) as error:
            raise BadRequestError(f"'bounds' must be [[low, high], ...]: {error}") from error
    for name in STRING_TUPLE_FIELDS:
        value = request_fields.get(name)
        if value is None:
            continue
        if (
            not isinstance(value, (list, tuple))
            or not value
            or not all(isinstance(item, str) and item for item in value)
        ):
            raise BadRequestError(
                f"request field {name!r} must be a non-empty list of strings"
            )
        scalars[name] = tuple(value)

    deadline_s: Optional[float] = None
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
            raise BadRequestError("'deadline_ms' must be a number")
        if deadline_ms <= 0:
            raise BadRequestError(f"'deadline_ms' must be positive, got {deadline_ms}")
        deadline_s = float(deadline_ms) / 1e3
    if max_deadline_s is not None:
        deadline_s = max_deadline_s if deadline_s is None else min(deadline_s, max_deadline_s)

    include_residuals = body.get("include_residuals", False)
    if not isinstance(include_residuals, bool):
        raise BadRequestError("'include_residuals' must be a boolean")
    return LocateCall(
        estimator=estimator,
        config=config,
        arrays=arrays,
        scalars=scalars,
        deadline_s=deadline_s,
        include_residuals=include_residuals,
    )


def encode_report_payload(
    payload: Dict[str, Any],
    shard: int,
    server_ms: float,
    request_id: Optional[str] = None,
) -> Dict[str, Any]:
    """JSON-safe success body from a worker's report payload.

    ``payload`` is the picklable report dict a worker ships back
    (:func:`repro.serve.net.worker.report_payload`); arrays become
    lists, and the serving envelope (shard, timing, request id) is
    stamped on.
    """
    body: Dict[str, Any] = {
        "estimator": payload["estimator"],
        "config_hash": payload["config_hash"],
        "position": np.asarray(payload["position"]).tolist(),
        "reference_distance_m": payload["reference_distance_m"],
        "diagnostics": payload["diagnostics"],
        "shard": shard,
        "server_ms": round(server_ms, 3),
    }
    if request_id is not None:
        body["request_id"] = request_id
    residuals = payload.get("residuals")
    if residuals is not None:
        body["residuals"] = np.asarray(residuals).tolist()
    return body


def classify_error(error: BaseException, retry_after_s: float) -> Tuple[int, Dict[str, Any]]:
    """Map one failure to ``(HTTP status, JSON error body)``.

    The mapping is total: anything unrecognized becomes a 500 with kind
    ``"internal"`` (the handler logs it; the body never leaks a
    traceback).
    """
    if isinstance(error, QueueFullError):
        return 429, error_body("queue_full", str(error), retry_after_s=retry_after_s)
    if isinstance(error, DeadlineExceededError):
        return 504, error_body("deadline_exceeded", str(error))
    if isinstance(error, EngineClosedError):
        return 503, error_body("draining", str(error))
    if isinstance(error, WorkerDiedError):
        return 503, error_body("shard_unavailable", str(error))
    if isinstance(error, RemoteEstimationError):
        body = error_body("estimation_failed", str(error))
        body["error"]["exc_type"] = error.exc_type
        return 422, body
    if isinstance(error, UnknownAntennaError):
        return 404, error_body("unknown_antenna", str(error))
    if isinstance(error, VersionConflictError):
        return 409, error_body("version_conflict", str(error))
    if isinstance(error, (BadRequestError, KeyError, TypeError, ValueError)):
        # KeyError/TypeError/ValueError surface config-resolution failures
        # exactly as repro.pipeline.resolve_config raises them.
        message = str(error.args[0]) if isinstance(error, KeyError) and error.args else str(error)
        return 400, error_body("bad_request", message)
    return 500, error_body("internal", f"{type(error).__name__}: {error}")


def error_body(
    kind: str, message: str, retry_after_s: Optional[float] = None
) -> Dict[str, Any]:
    """The uniform JSON error envelope."""
    error: Dict[str, Any] = {"kind": kind, "message": message}
    body: Dict[str, Any] = {"error": error}
    if retry_after_s is not None:
        body["retry_after_s"] = retry_after_s
    return body
