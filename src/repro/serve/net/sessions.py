"""HTTP face of the streaming session layer.

The session routes bridge :class:`repro.stream.SessionManager` into the
network front end:

- ``POST /v1/sessions`` — open a session (JSON body: ``tag``, optional
  ``antenna`` / ``session_id`` / ``estimator`` / ``estimator_config`` /
  ``stream`` overrides of :class:`repro.stream.StreamConfig` fields).
- ``POST /v1/sessions/{id}/reads`` — NDJSON chunk ingest: one read per
  line, ``{"t": <seconds>, "position": [x, y], "phase": <rad>}``.
- ``GET /v1/sessions/{id}`` — the session snapshot.
- ``DELETE /v1/sessions/{id}`` — close (final windowed re-solve, then
  departure).

This module owns the parsing and the error taxonomy extension; the
asyncio handler in :mod:`repro.serve.net.http` stays a thin router.
Sessions live in the front-end process (re-solves run on the serving
thread pool), so their events and ``serve.stream.*`` metrics land in
the same registry ``GET /metrics`` merges.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.net.protocol import BadRequestError, classify_error, error_body
from repro.stream import (
    FeedResult,
    SessionCapacityError,
    SessionClosedError,
    DuplicateSessionError,
    StreamConfig,
    UnknownSessionError,
)

#: ``POST /v1/sessions`` body keys (anything else is a 400).
_CREATE_KEYS = ("tag", "antenna", "session_id", "estimator", "estimator_config", "stream")

Read = Tuple[float, Sequence[float], float]


def parse_session_create(
    raw: bytes, defaults: StreamConfig
) -> Tuple[str, str, Optional[str], StreamConfig]:
    """Parse one ``POST /v1/sessions`` body.

    Returns ``(tag, antenna, session_id, config)`` where ``config`` is
    ``defaults`` overridden by the body's ``estimator`` /
    ``estimator_config`` / ``stream`` fields.

    Raises:
        BadRequestError: on malformed input (maps to 400).
    """
    try:
        body = json.loads(raw) if raw else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise BadRequestError(f"body is not valid JSON: {error}") from error
    if not isinstance(body, dict):
        raise BadRequestError(f"body must be a JSON object, got {type(body).__name__}")
    unknown = sorted(set(body) - set(_CREATE_KEYS))
    if unknown:
        raise BadRequestError(f"unknown session fields: {unknown}")

    tag = body.get("tag")
    if not isinstance(tag, str) or not tag:
        raise BadRequestError("'tag' must be a non-empty string")
    antenna = body.get("antenna", "1")
    if not isinstance(antenna, str) or not antenna:
        raise BadRequestError("'antenna' must be a non-empty string")
    session_id = body.get("session_id")
    if session_id is not None and (not isinstance(session_id, str) or not session_id):
        raise BadRequestError("'session_id' must be a non-empty string when given")

    overrides: Dict[str, Any] = {}
    stream = body.get("stream", {})
    if not isinstance(stream, dict):
        raise BadRequestError("'stream' must be a JSON object of StreamConfig overrides")
    overrides.update(stream)
    if "estimator" in body:
        estimator = body["estimator"]
        if not isinstance(estimator, str) or not estimator:
            raise BadRequestError("'estimator' must be a non-empty string")
        overrides["estimator"] = estimator
    if "estimator_config" in body:
        estimator_config = body["estimator_config"]
        if estimator_config is not None and not isinstance(estimator_config, dict):
            raise BadRequestError("'estimator_config' must be a JSON object when given")
        overrides["estimator_config"] = estimator_config
    try:
        config = defaults.override(**overrides) if overrides else defaults
    except (TypeError, ValueError) as error:
        raise BadRequestError(f"bad stream config: {error}") from error
    return tag, antenna, session_id, config


def parse_reads_ndjson(raw: bytes) -> List[Read]:
    """Parse one NDJSON reads chunk into ``(t, position, phase)`` tuples.

    One read per line: ``{"t": <seconds>, "position": [x, y], "phase":
    <rad>}``. Blank lines are skipped (a trailing newline is fine).

    Raises:
        BadRequestError: on malformed lines or an empty chunk.
    """
    reads: List[Read] = []
    for number, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise BadRequestError(f"line {number} is not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise BadRequestError(f"line {number} must be a JSON object")
        unknown = sorted(set(record) - {"t", "position", "phase"})
        if unknown:
            raise BadRequestError(f"line {number} has unknown fields: {unknown}")
        try:
            timestamp = float(record["t"])
            phase = float(record["phase"])
        except (KeyError, TypeError, ValueError) as error:
            raise BadRequestError(
                f"line {number} needs numeric 't' and 'phase': {error}"
            ) from error
        position = record.get("position")
        if (
            not isinstance(position, (list, tuple))
            or len(position) not in (2, 3)
            or not all(isinstance(value, (int, float)) for value in position)
        ):
            raise BadRequestError(
                f"line {number} 'position' must be a 2- or 3-element number array"
            )
        reads.append((timestamp, [float(value) for value in position], phase))
    if not reads:
        raise BadRequestError("reads chunk is empty")
    return reads


def feed_result_body(result: FeedResult) -> Dict[str, Any]:
    """JSON-safe body for feed/close responses: state, events, estimate."""
    return {
        "session_id": result.session_id,
        "accepted": result.accepted,
        "state": result.state,
        "events": [event.to_dict() for event in result.events],
        "estimate": result.estimate,
    }


def classify_session_error(
    error: BaseException, retry_after_s: float
) -> Tuple[int, Dict[str, Any]]:
    """Session-route error taxonomy; falls back to :func:`classify_error`.

    Capacity shedding is 429 (with the usual retry hint), an unknown id
    is 404, and duplicate/closed sessions are 409 — structural outcomes
    a streaming client branches on, same as the locate path's kinds.
    """
    if isinstance(error, SessionCapacityError):
        return 429, error_body("session_capacity", str(error), retry_after_s=retry_after_s)
    if isinstance(error, UnknownSessionError):
        return 404, error_body("unknown_session", str(error))
    if isinstance(error, DuplicateSessionError):
        return 409, error_body("duplicate_session", str(error))
    if isinstance(error, SessionClosedError):
        return 409, error_body("session_closed", str(error))
    return classify_error(error, retry_after_s)
