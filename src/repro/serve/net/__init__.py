"""Networked sharded serving front end.

``repro.serve`` hosts one in-process micro-batching engine;
``repro.serve.net`` puts N of them behind a socket. An asyncio HTTP
server (:class:`NetServer`) parses ``POST /v1/locate`` bodies, a
:class:`ShardSupervisor` routes each request to the worker owning its
``(estimator, config_hash)`` group (stable :func:`shard_for` digest),
and every worker process hosts its own :class:`repro.serve.ServeEngine`
— so micro-batches stay compact per group while groups proceed in
parallel across shards. Large request arrays ship through
:class:`repro.parallel.SharedArrayBundle` shared memory instead of the
pickle pipe.

Operational surface: ``/healthz`` / ``/readyz`` probes, merged
Prometheus ``/metrics`` across shards, load shedding (429 with
``Retry-After``; 504 on deadline breaches), graceful drain on SIGTERM
that loses no accepted request, per-request ids (``X-Request-Id`` /
``traceparent``) with cross-process trace stitching into a flight
recorder (``/debug/traces``, dumped on SIGUSR2), ring-buffer telemetry
history (``/debug/timeseries``, ``lion top``), and multi-window
burn-rate SLOs (``/slo``). Streaming tags ride the session surface
(``POST /v1/sessions`` + NDJSON ``/reads`` chunks, lifecycle events in
every response) over one front-end :class:`repro.stream.SessionManager`
with session-aware drain. Start one with ``lion serve``, embed one
with :class:`ServerHandle`, or await :class:`NetServer` inside an
existing loop. See ``docs/serving.md`` and ``docs/observability.md``.
"""

from repro.serve.net.config import WORKER_MODES, NetServeConfig
from repro.serve.net.http import NetServer, ServerHandle, derive_serve_sample, run_server
from repro.serve.net.protocol import (
    ARRAY_FIELDS,
    SCALAR_FIELDS,
    BadRequestError,
    LocateCall,
    classify_error,
    encode_report_payload,
    error_body,
    parse_locate_body,
)
from repro.serve.net.sessions import (
    classify_session_error,
    feed_result_body,
    parse_reads_ndjson,
    parse_session_create,
)
from repro.serve.net.supervisor import ShardSupervisor, shard_for
from repro.serve.net.worker import WireRequest, WireResponse, WorkerConfig, worker_main

__all__ = [
    # config
    "NetServeConfig",
    "WORKER_MODES",
    # http
    "NetServer",
    "ServerHandle",
    "run_server",
    "derive_serve_sample",
    # protocol
    "ARRAY_FIELDS",
    "SCALAR_FIELDS",
    "BadRequestError",
    "LocateCall",
    "parse_locate_body",
    "encode_report_payload",
    "classify_error",
    "error_body",
    # sessions
    "parse_session_create",
    "parse_reads_ndjson",
    "feed_result_body",
    "classify_session_error",
    # supervisor
    "ShardSupervisor",
    "shard_for",
    # worker
    "WorkerConfig",
    "WireRequest",
    "WireResponse",
    "worker_main",
]
