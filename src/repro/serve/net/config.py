"""Tuning knobs of the network serving front end.

One frozen dataclass configures the whole stack — listener, supervisor,
and the per-shard :class:`repro.serve.ServeConfig` every worker's engine
is built from — so a server is reproducible from a single picklable
value (workers receive it at spawn, manifests can hash it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.engine import ServeConfig
from repro.stream import StreamConfig

#: Worker hosting modes. ``"process"`` is the real deployment shape:
#: spawned worker processes, true per-shard isolation, shared-memory
#: request shipping. ``"thread"`` hosts each worker loop in a daemon
#: thread of the server process — no isolation, but instant startup and
#: in-process coverage, which tests and debugging want.
WORKER_MODES = ("process", "thread")


@dataclass(frozen=True)
class NetServeConfig:
    """Configuration of one :class:`repro.serve.net.NetServer`.

    Attributes:
        host: listen address (loopback by default; this is a front end
            for a trusted LAN/load balancer, not the open internet).
        port: listen port; ``0`` binds an ephemeral port (tests and the
            benchmark read it back from ``NetServer.port``).
        shards: worker count; requests route to ``shard_for(estimator,
            config_hash, shards)`` so one config group always lands on
            one engine and batches compactly.
        engine: per-shard :class:`repro.serve.ServeConfig` (queue bound,
            batch size, wait window, deadlines).
        worker_mode: ``"process"`` (default) or ``"thread"`` (tests).
        max_inflight_per_shard: supervisor-side load-shedding bound on
            requests in flight to one shard; beyond it ``/v1/locate``
            sheds with 429 before paying the worker round trip.
        shm_threshold_bytes: request array payloads at least this large
            ship via :class:`repro.parallel.SharedArrayBundle` segments;
            smaller ones are pickled inline (a segment per tiny request
            costs more than it saves).
        retry_after_s: hint returned with 429 responses (JSON field and
            the integer-rounded ``Retry-After`` header).
        max_deadline_s: cap on client-supplied ``deadline_ms`` (and the
            default when the engine has none); ``None`` means no cap.
        drain_grace_s: pause between flipping ``/readyz`` to 503 and
            closing the listener, so load balancers observe not-ready
            while the socket still accepts.
        drain_timeout_s: how long drain waits for in-flight requests and
            worker engine drains before force-terminating.
        ready_timeout_s: how long ``start`` waits for every worker's
            ready handshake.
        metrics: enable :mod:`repro.obs` metrics in the server process
            and every worker; ``GET /metrics`` merges them (process
            workers are labelled ``shard="i"``).
        max_body_bytes: request-body cap; larger bodies get 413.
        tracing: enable span recording in the server and every worker —
            each ``/v1/locate`` request gets a stitched cross-process
            trace (ingress -> shard route -> worker dispatch -> solver)
            and the slow/errored ones land in the flight recorder at
            ``GET /debug/traces``.
        history_cadence_s: sampling interval of the telemetry ring
            buffer behind ``GET /debug/timeseries`` and ``GET /slo``.
        history_window_s: how much history the ring buffer retains (and
            the default ``?window=`` of ``/debug/timeseries``).
        recorder_capacity: flight-recorder depth (stitched traces kept).
        recorder_slow_ms: a traced request at least this slow is
            retained even when it succeeded; errored requests are always
            retained. ``0`` records everything (tests, trace smokes).
        trace_dump_path: where SIGUSR2 dumps the flight recorder.
        slo_p99_ms: latency objective — p99 of ``/v1/locate`` must stay
            at or under this many milliseconds.
        slo_error_rate: error objective — the 5xx fraction of
            ``/v1/locate`` responses must stay at or under this.
        max_sessions: live streaming-session capacity of the front end;
            ``POST /v1/sessions`` beyond it sheds with 429.
        stream: default :class:`repro.stream.StreamConfig` of sessions
            opened without per-session overrides.
        session_sweep_cadence_s: cadence of the background idle sweep
            departing sessions past their ``depart_after_s``.
        calibration_store: path of a :class:`repro.calib.CalibrationStore`
            directory; when set the front end opens it, serves
            ``GET/POST /v1/calibrations``, reports fleet health in
            ``/statz``, and resolves ``antennas`` on ``/v1/locate``
            requests into calibrated centers / offset corrections before
            routing. ``None`` (default) disables the calibration surface.
        calibration_max_age_s: staleness age budget used by the fleet
            health block of ``/statz`` (:class:`repro.calib.StalenessPolicy`
            ``max_age_s``).
    """

    host: str = "127.0.0.1"
    port: int = 8321
    shards: int = 1
    engine: ServeConfig = field(default_factory=ServeConfig)
    worker_mode: str = "process"
    max_inflight_per_shard: int = 256
    shm_threshold_bytes: int = 8192
    retry_after_s: float = 0.05
    max_deadline_s: float | None = None
    drain_grace_s: float = 0.0
    drain_timeout_s: float = 30.0
    ready_timeout_s: float = 60.0
    metrics: bool = True
    max_body_bytes: int = 8 * 1024 * 1024
    tracing: bool = True
    history_cadence_s: float = 1.0
    history_window_s: float = 300.0
    recorder_capacity: int = 64
    recorder_slow_ms: float = 250.0
    trace_dump_path: str = "lion-flight-recorder.json"
    slo_p99_ms: float = 250.0
    slo_error_rate: float = 0.01
    max_sessions: int = 1024
    stream: StreamConfig = field(default_factory=StreamConfig)
    session_sweep_cadence_s: float = 1.0
    calibration_store: str | None = None
    calibration_max_age_s: float = 24.0 * 3600.0

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, got {self.worker_mode!r}"
            )
        if self.max_inflight_per_shard <= 0:
            raise ValueError(
                f"max_inflight_per_shard must be positive, got {self.max_inflight_per_shard}"
            )
        if self.shm_threshold_bytes < 0:
            raise ValueError(
                f"shm_threshold_bytes must be non-negative, got {self.shm_threshold_bytes}"
            )
        if self.retry_after_s < 0:
            raise ValueError(f"retry_after_s must be non-negative, got {self.retry_after_s}")
        if self.max_deadline_s is not None and self.max_deadline_s <= 0:
            raise ValueError(f"max_deadline_s must be positive, got {self.max_deadline_s}")
        if self.drain_grace_s < 0:
            raise ValueError(f"drain_grace_s must be non-negative, got {self.drain_grace_s}")
        if self.drain_timeout_s <= 0:
            raise ValueError(f"drain_timeout_s must be positive, got {self.drain_timeout_s}")
        if self.ready_timeout_s <= 0:
            raise ValueError(f"ready_timeout_s must be positive, got {self.ready_timeout_s}")
        if self.max_body_bytes <= 0:
            raise ValueError(f"max_body_bytes must be positive, got {self.max_body_bytes}")
        if self.history_cadence_s <= 0:
            raise ValueError(
                f"history_cadence_s must be positive, got {self.history_cadence_s}"
            )
        if self.history_window_s < self.history_cadence_s:
            raise ValueError(
                f"history_window_s must be >= history_cadence_s, got "
                f"{self.history_window_s} < {self.history_cadence_s}"
            )
        if self.recorder_capacity <= 0:
            raise ValueError(
                f"recorder_capacity must be positive, got {self.recorder_capacity}"
            )
        if self.recorder_slow_ms < 0:
            raise ValueError(
                f"recorder_slow_ms must be non-negative, got {self.recorder_slow_ms}"
            )
        if self.slo_p99_ms <= 0:
            raise ValueError(f"slo_p99_ms must be positive, got {self.slo_p99_ms}")
        if not 0.0 < self.slo_error_rate < 1.0:
            raise ValueError(
                f"slo_error_rate must be in (0, 1), got {self.slo_error_rate}"
            )
        if self.max_sessions <= 0:
            raise ValueError(f"max_sessions must be positive, got {self.max_sessions}")
        if self.session_sweep_cadence_s <= 0:
            raise ValueError(
                f"session_sweep_cadence_s must be positive, got "
                f"{self.session_sweep_cadence_s}"
            )
        if self.calibration_max_age_s <= 0:
            raise ValueError(
                f"calibration_max_age_s must be positive, got "
                f"{self.calibration_max_age_s}"
            )
