"""Shard supervisor: routes requests to worker-hosted engines.

Requests route by a *stable* digest of ``(estimator, config_hash)`` —
:func:`shard_for` — so every request of one config group lands on the
same worker and its engine batches compactly. That key is the whole
point of sharding this workload: micro-batches only fuse within a
group, so spreading a group across workers would fragment every batch,
while pinning groups to shards lets one shard's batch-fill window
overlap another shard's solve even on constrained hardware.

The supervisor owns the process/pipe plumbing: per-worker duplex pipes
(single sender per direction), a receiver thread per worker resolving
futures by request id, parent-owned :class:`SharedArrayBundle` segments
per large request (closed when its response lands), supervisor-side
load shedding at ``max_inflight_per_shard``, and the two-phase drain
the HTTP layer calls on SIGTERM. A worker that dies mid-flight fails
its pending futures with :class:`WorkerDiedError` and flips readiness.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import config_fingerprint, get_registry, metrics_enabled
from repro.obs.metrics import MetricsRegistry
from repro.parallel import SharedArrayBundle, SharedArraySpec
from repro.pipeline.registry import resolve_config
from repro.serve.errors import (
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
    RemoteEstimationError,
    WorkerDiedError,
)
from repro.serve.net.config import NetServeConfig
from repro.serve.net.protocol import LocateCall
from repro.serve.net.worker import WireRequest, WireResponse, WorkerConfig, worker_main


def shard_for(estimator: str, config_hash: str, shards: int) -> int:
    """Deterministic shard of one ``(estimator, config_hash)`` group.

    Uses a content digest, not :func:`hash` — Python string hashing is
    randomized per process, and routing must agree across restarts,
    machines, and the tests that pin it.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    digest = hashlib.blake2b(
        f"{estimator}:{config_hash}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % shards


@dataclass
class _Pending:
    """One request in flight to a worker."""

    future: "Future[Dict[str, Any]]"
    bundle: Optional[SharedArrayBundle]
    shard: int


@dataclass
class _Worker:
    """Parent-side handle to one shard worker."""

    index: int
    conn: Any
    runner: Any  # multiprocessing.Process or threading.Thread
    lock: threading.Lock = field(default_factory=threading.Lock)
    pending: Dict[int, _Pending] = field(default_factory=dict)
    ready: threading.Event = field(default_factory=threading.Event)
    drained: threading.Event = field(default_factory=threading.Event)
    drained_stats: Optional[Dict[str, Any]] = None
    dead: bool = False
    receiver: Optional[threading.Thread] = None


_WIRE_ERRORS = {
    "queue_full": QueueFullError,
    "deadline": DeadlineExceededError,
    "draining": EngineClosedError,
}


def _wire_error(payload: Dict[str, Any]) -> Exception:
    """Rebuild a typed exception from a worker's error payload."""
    kind = payload.get("kind", "estimation")
    message = str(payload.get("message", ""))
    cls = _WIRE_ERRORS.get(kind)
    if cls is not None:
        return cls(message)
    return RemoteEstimationError(str(payload.get("exc_type", "Exception")), message)


class ShardSupervisor:
    """Owns the worker fleet and the request routing into it."""

    def __init__(self, config: NetServeConfig) -> None:
        self.config = config
        self._workers: List[_Worker] = []
        self._ids = itertools.count(1)
        self._control_lock = threading.Lock()
        self._control: Dict[int, Tuple[threading.Event, List[Any]]] = {}
        self._draining = False
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and block until every one is ready.

        Raises:
            RuntimeError: when a worker misses the ready handshake.
        """
        if self._started:
            return
        self._started = True
        for index in range(self.config.shards):
            self._workers.append(self._spawn_worker(index))
        deadline = time.monotonic() + self.config.ready_timeout_s
        for worker in self._workers:
            if not worker.ready.wait(max(deadline - time.monotonic(), 0.0)):
                self.close()
                raise RuntimeError(
                    f"shard {worker.index} missed the ready handshake within "
                    f"{self.config.ready_timeout_s:.1f}s"
                )

    def _spawn_worker(self, index: int) -> _Worker:
        """Spawn one shard worker (process or thread) and its receiver."""
        ctx = multiprocessing.get_context("spawn")
        worker_config = WorkerConfig(
            shard_index=index,
            engine=self.config.engine,
            metrics=self.config.metrics,
            tracing=self.config.tracing,
            drain_timeout_s=self.config.drain_timeout_s,
        )
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        runner: Any
        if self.config.worker_mode == "process":
            runner = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_config),
                name=f"repro-serve-net-worker-{index}",
                daemon=True,
            )
            runner.start()
            child_conn.close()
        else:
            runner = threading.Thread(
                target=worker_main,
                args=(child_conn, worker_config),
                name=f"repro-serve-net-worker-{index}",
                daemon=True,
            )
            runner.start()
        worker = _Worker(index=index, conn=parent_conn, runner=runner)
        worker.receiver = threading.Thread(
            target=self._recv_loop,
            args=(worker,),
            name=f"repro-serve-net-recv-{index}",
            daemon=True,
        )
        worker.receiver.start()
        return worker

    def restart_shard(self, index: int, timeout: Optional[float] = None) -> None:
        """Replace one shard's worker with a fresh one.

        In-flight requests to the old worker fail with
        :class:`WorkerDiedError` (clients retry; the stable routing key
        sends them back to the same shard). The old runner is torn down
        — terminated when it is a process, abandoned to its EOF exit
        when it is a thread — and a replacement spawns with the same
        shard index, so metrics labels and routing are unchanged.

        Raises:
            RuntimeError: when the supervisor is not running, ``index``
                is out of range, or the replacement misses its ready
                handshake.
        """
        if not self._started or self._closed or self._draining:
            raise RuntimeError("restart_shard requires a running supervisor")
        if not 0 <= index < len(self._workers):
            raise RuntimeError(
                f"shard index {index} out of range 0..{len(self._workers) - 1}"
            )
        old = self._workers[index]
        old.dead = True
        self._fail_pending(old, WorkerDiedError(f"shard {index} restarting"))
        try:
            old.conn.close()
        except OSError:
            pass
        if isinstance(old.runner, multiprocessing.process.BaseProcess):
            if old.runner.is_alive():
                old.runner.terminate()
            old.runner.join(5.0)
        if old.receiver is not None:
            old.receiver.join(timeout=5.0)
        replacement = self._spawn_worker(index)
        self._workers[index] = replacement
        budget = self.config.ready_timeout_s if timeout is None else timeout
        if not replacement.ready.wait(budget):
            replacement.dead = True
            raise RuntimeError(
                f"shard {index} replacement missed the ready handshake within "
                f"{budget:.1f}s"
            )

    def ready(self) -> Tuple[bool, str]:
        """Whether every shard accepts traffic, with a reason when not."""
        if self._closed:
            return False, "closed"
        if self._draining:
            return False, "draining"
        if not self._started:
            return False, "not_started"
        for worker in self._workers:
            if worker.dead:
                return False, f"shard_{worker.index}_dead"
            if not worker.ready.is_set():
                return False, f"shard_{worker.index}_starting"
        return True, "ok"

    def drain(self, timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Stop admitting, flush every worker's engine, join the fleet.

        Returns per-shard final engine stats (including the worker's own
        ``drained_clean`` flag from :meth:`ServeEngine.close`). Safe to
        call twice; the second call returns the recorded stats.
        """
        self._draining = True
        budget = self.config.drain_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + budget
        for worker in self._workers:
            if worker.dead or worker.drained.is_set():
                continue
            with worker.lock:
                try:
                    worker.conn.send(("drain",))
                except (BrokenPipeError, OSError):
                    worker.dead = True
        stats: List[Dict[str, Any]] = []
        for worker in self._workers:
            clean = worker.drained.wait(max(deadline - time.monotonic(), 0.0))
            if not clean and not worker.dead:
                # Straggler: force it down; its pending futures fail below.
                if isinstance(worker.runner, multiprocessing.process.BaseProcess):
                    worker.runner.terminate()
                worker.dead = True
            self._join_runner(worker, max(deadline - time.monotonic(), 0.1))
            self._fail_pending(worker, WorkerDiedError(f"shard {worker.index} did not drain"))
            stats.append(
                worker.drained_stats
                or {"shard": worker.index, "drained_clean": False}
            )
        self._closed = True
        return stats

    def close(self) -> None:
        """Drain with the configured timeout and release the pipes."""
        if not self._closed:
            self.drain()
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:
                pass

    @staticmethod
    def _join_runner(worker: _Worker, timeout: float) -> None:
        runner = worker.runner
        runner.join(timeout)
        if isinstance(runner, multiprocessing.process.BaseProcess) and runner.is_alive():
            runner.terminate()
            runner.join(1.0)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, call: LocateCall, request_id: Optional[str] = None
    ) -> "Tuple[Future[Dict[str, Any]], int]":
        """Route one parsed call; returns ``(future, shard)``.

        The future resolves to the worker's report payload dict, or to
        the typed exception the worker (or this supervisor) shed it
        with. Raises synchronously for failures that never reach a
        worker — unknown estimator / bad config (as ``resolve_config``),
        :class:`QueueFullError` at the inflight bound,
        :class:`EngineClosedError` when draining,
        :class:`WorkerDiedError` for a dead shard.

        ``request_id`` rides the wire so the worker stamps it on its
        dispatch spans and ships them back on the response payload
        (``payload["trace"]``) for cross-process trace stitching.
        """
        if self._draining or self._closed:
            raise EngineClosedError("server is draining")
        resolved = resolve_config(call.estimator, call.config)
        config_hash = config_fingerprint(
            {"estimator": call.estimator, **resolved.to_dict()}
        )
        shard = shard_for(call.estimator, config_hash, self.config.shards)
        worker = self._workers[shard]
        if worker.dead:
            raise WorkerDiedError(f"shard {shard} worker is down")
        future: "Future[Dict[str, Any]]" = Future()
        deadline_epoch = (
            time.time() + call.deadline_s if call.deadline_s is not None else None
        )
        with worker.lock:
            if len(worker.pending) >= self.config.max_inflight_per_shard:
                self._count_shed("inflight_limit")
                raise QueueFullError(
                    f"shard {shard} at inflight limit "
                    f"{self.config.max_inflight_per_shard}"
                )
            req_id = next(self._ids)
            specs, inline, bundle = self._pack_arrays(call.arrays)
            message = WireRequest(
                req_id=req_id,
                name=call.estimator,
                config=call.config,
                specs=specs,
                inline=inline,
                scalars=call.scalars,
                deadline_epoch=deadline_epoch,
                include_residuals=call.include_residuals,
                request_id=request_id or "",
            )
            worker.pending[req_id] = _Pending(future=future, bundle=bundle, shard=shard)
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError) as error:
                entry = worker.pending.pop(req_id, None)
                if entry is not None and entry.bundle is not None:
                    entry.bundle.close()
                worker.dead = True
                raise WorkerDiedError(f"shard {shard} pipe is broken") from error
            depth = len(worker.pending)
        if metrics_enabled():
            registry = get_registry()
            registry.counter("serve.net.shard_requests_total", shard=shard).inc()
            registry.gauge("serve.net.shard_inflight", shard=shard).set(depth)
        return future, shard

    def _pack_arrays(
        self, arrays: Dict[str, Any]
    ) -> Tuple[Dict[str, SharedArraySpec], Dict[str, Any], Optional[SharedArrayBundle]]:
        """Choose the transport for one request's arrays.

        Large payloads (>= ``shm_threshold_bytes`` in total) go through
        a parent-owned shared-memory bundle — workers map the bytes
        instead of unpickling them — and the bundle is closed when the
        response (or the worker's death) releases the request. Small
        payloads pickle inline; a segment per tiny request costs more
        than it moves.
        """
        total = sum(array.nbytes for array in arrays.values())
        if not arrays or total < self.config.shm_threshold_bytes:
            return {}, dict(arrays), None
        bundle = SharedArrayBundle(**arrays)
        specs = {
            name: spec for name, spec in bundle.specs.items() if spec is not None
        }
        return specs, {}, bundle

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _recv_loop(self, worker: _Worker) -> None:
        """Per-worker receiver: resolve futures, stash control replies."""
        try:
            while True:
                message = worker.conn.recv()
                if isinstance(message, WireResponse):
                    self._resolve(worker, message)
                elif isinstance(message, tuple) and message:
                    if message[0] == "ready":
                        worker.ready.set()
                    elif message[0] == "drained":
                        worker.drained_stats = message[1]
                        worker.drained.set()
                    elif message[0] in ("metrics_res", "stats_res"):
                        with self._control_lock:
                            slot = self._control.pop(message[1], None)
                        if slot is not None:
                            slot[1].append(message[2])
                            slot[0].set()
        except (EOFError, OSError):
            pass
        finally:
            if not worker.drained.is_set():
                worker.dead = True
                self._fail_pending(
                    worker, WorkerDiedError(f"shard {worker.index} worker exited")
                )

    def _resolve(self, worker: _Worker, message: WireResponse) -> None:
        with worker.lock:
            entry = worker.pending.pop(message.req_id, None)
            depth = len(worker.pending)
        if entry is None:
            return
        if entry.bundle is not None:
            entry.bundle.close()
        if metrics_enabled():
            get_registry().gauge("serve.net.shard_inflight", shard=worker.index).set(depth)
        if message.ok:
            entry.future.set_result(message.payload)
        else:
            if message.payload.get("kind") == "queue_full":
                self._count_shed("worker_queue")
            entry.future.set_exception(_wire_error(message.payload))

    def _fail_pending(self, worker: _Worker, error: Exception) -> None:
        with worker.lock:
            entries = list(worker.pending.values())
            worker.pending.clear()
        for entry in entries:
            if entry.bundle is not None:
                entry.bundle.close()
            if not entry.future.done():
                entry.future.set_exception(error)

    @staticmethod
    def _count_shed(reason: str) -> None:
        if metrics_enabled():
            get_registry().counter("serve.net.shed_total", reason=reason).inc()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _control_roundtrip(self, worker: _Worker, kind: str, timeout: float) -> Any:
        """Blocking control request to one worker; ``None`` on timeout."""
        if worker.dead or worker.drained.is_set():
            return None
        mid = next(self._ids)
        event = threading.Event()
        holder: List[Any] = []
        with self._control_lock:
            self._control[mid] = (event, holder)
        with worker.lock:
            try:
                worker.conn.send((kind, mid))
            except (BrokenPipeError, OSError):
                return None
        if not event.wait(timeout):
            with self._control_lock:
                self._control.pop(mid, None)
            return None
        return holder[0]

    def shard_stats(self, timeout: float = 5.0) -> List[Dict[str, Any]]:
        """Per-shard engine stats (live via control message, or final)."""
        stats: List[Dict[str, Any]] = []
        for worker in self._workers:
            if worker.drained_stats is not None:
                stats.append(worker.drained_stats)
                continue
            reply = self._control_roundtrip(worker, "stats", timeout)
            if reply is None:
                stats.append({"shard": worker.index, "unreachable": True})
            else:
                reply = dict(reply)
                reply["shard"] = worker.index
                stats.append(reply)
        return stats

    def merged_metrics(self, timeout: float = 5.0) -> MetricsRegistry:
        """One registry merging the parent's metrics with every shard's.

        Process-mode worker snapshots gain a ``shard="i"`` label before
        merging, so per-shard engine series (queue depth, batch sizes)
        stay distinguishable in one exporter. Thread-mode workers record
        straight into the parent registry already, so their snapshots
        are skipped to avoid double counting.
        """
        merged = MetricsRegistry()
        merged.merge(get_registry().snapshot())
        if self.config.worker_mode != "process":
            return merged
        for worker in self._workers:
            snapshot = self._control_roundtrip(worker, "metrics", timeout)
            if not snapshot:
                continue
            merged.merge(_label_shard(snapshot, worker.index))
        return merged

    def prometheus_text(self, timeout: float = 5.0) -> str:
        """The merged registry in Prometheus text exposition format."""
        return self.merged_metrics(timeout).to_prometheus_text()


def _label_shard(
    snapshot: Dict[str, List[Dict[str, Any]]], shard: int
) -> Dict[str, List[Dict[str, Any]]]:
    """Copy of a worker's metrics snapshot with ``shard`` stamped on."""
    labelled: Dict[str, List[Dict[str, Any]]] = {}
    for kind, entries in snapshot.items():
        labelled[kind] = []
        for entry in entries:
            entry = dict(entry)
            entry["labels"] = {**entry.get("labels", {}), "shard": str(shard)}
            labelled[kind].append(entry)
    return labelled
