"""In-process serving engine with dynamic micro-batching.

The ROADMAP's serving tier: concurrent :class:`EstimationRequest`
traffic enters a bounded admission queue, a batcher thread groups
compatible requests by ``(estimator, config_hash, dim)`` inside a
max-wait/max-batch window, and batchable groups (batch LION with the
WLS solver) execute as one fused stacked-IRLS dispatch — bit-identical
to the scalar path, several times the throughput at paper-scale batch
sizes. See ``docs/serving.md`` for architecture and tuning, and
``lion serve-bench`` / ``benchmarks/bench_serve.py`` for the load
generator behind ``BENCH_serve.json``.

The network tier lives in :mod:`repro.serve.net`: an asyncio HTTP front
end sharding requests by ``(estimator, config_hash)`` across worker
processes that each host one of these engines (``lion serve``).
"""

from repro.serve.batching import GroupKey, execute_batch, group_key, is_batchable
from repro.serve.cache import CacheKey, ResultCache
from repro.serve.engine import (
    BATCH_SIZE_BUCKETS,
    ServeConfig,
    ServeEngine,
    Ticket,
)
from repro.serve.errors import (
    DeadlineExceededError,
    EngineClosedError,
    QueueFullError,
    RemoteEstimationError,
    ServeError,
    WorkerDiedError,
)

__all__ = [
    # engine
    "ServeEngine",
    "ServeConfig",
    "Ticket",
    "BATCH_SIZE_BUCKETS",
    # batching
    "GroupKey",
    "group_key",
    "is_batchable",
    "execute_batch",
    # cache
    "CacheKey",
    "ResultCache",
    # errors
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "EngineClosedError",
    "WorkerDiedError",
    "RemoteEstimationError",
]
