"""The dynamic micro-batching serving engine.

Request path::

    submit() ──► result cache ──► bounded admission queue ──► batcher
                                                                 │
                       ┌─────────────────────────────────────────┤
                       ▼                                         ▼
               fused batch dispatch                    per-request dispatch
          (lion/wls groups, one stacked IRLS)      (everything else, executor)

``submit`` resolves the estimator config (failing fast on unknown names
or bad configs), consults the LRU result cache, and enqueues into a
bounded queue — at depth it raises :class:`QueueFullError` instead of
buffering unboundedly, making backpressure the caller's explicit
decision. A single batcher thread pops the head-of-line group
``(estimator, config_hash, dim)``, waits up to ``max_wait_s`` for the
group to fill to ``max_batch_size`` (batchable groups only; scalar
groups dispatch immediately), then executes: batchable groups through
the fused path of :mod:`repro.serve.batching`, scalar groups through a
:mod:`repro.parallel` executor with per-member exception isolation.
Members whose fused slot failed — or whose whole batch raised
unexpectedly — are retried individually on the scalar path, so one bad
request degrades alone and the error a caller sees is exactly the
scalar path's error.

Deadlines are enforced at dispatch time: an expired ticket gets
:class:`DeadlineExceededError` without consuming solve time, and a
ticket cancelled while queued (``Ticket.cancel``) is skipped. All
instrumentation (queue-depth gauge, batch-size/wait histograms, spans,
per-result counters) rides the :mod:`repro.obs` flag-guards, so a
disabled-observability engine pays one flag check per event.
"""

from __future__ import annotations

import atexit
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    cast,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.calib.resolver import CalibrationResolver

from repro.core.batch_prepare import template_cache_info
from repro.core.sweep import pair_cache_info
from repro.obs import (
    LATENCY_BUCKETS_S,
    bind_request_id,
    config_fingerprint,
    get_logger,
    get_registry,
    metrics_enabled,
    span,
)
from repro.parallel import Executor, get_executor
from repro.pipeline.config import EstimatorConfig
from repro.pipeline.contract import EstimationReport, EstimationRequest
from repro.pipeline.estimators import LionEstimator
from repro.pipeline.registry import create_estimator, resolve_config
from repro.serve.batching import GroupKey, execute_batch, group_key, is_batchable
from repro.serve.cache import CacheKey, ResultCache
from repro.serve.errors import DeadlineExceededError, EngineClosedError, QueueFullError

#: Histogram buckets for micro-batch occupancy (requests per dispatch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_logger = get_logger("serve.engine")

#: Engines whose batcher thread is running and not yet closed. The batcher
#: is a daemon thread (a forgotten engine must never hang interpreter
#: exit), which means it can die *silently mid-batch* when the interpreter
#: finalizes — accepted tickets would never resolve. The module-level
#: atexit hook below drains every still-live engine first, so accepted
#: requests resolve even when the caller forgot ``close()``.
_LIVE_ENGINES: "weakref.WeakSet[ServeEngine]" = weakref.WeakSet()

#: How long the atexit drain waits per engine before giving up.
_ATEXIT_DRAIN_TIMEOUT_S = 10.0


@atexit.register
def _drain_live_engines() -> None:
    """Drain every engine still running at interpreter exit (best effort)."""
    for engine in list(_LIVE_ENGINES):
        try:
            engine.close(timeout=_ATEXIT_DRAIN_TIMEOUT_S)
        except Exception:  # pragma: no cover - never block interpreter exit
            pass


def _with_hit_rate(info: Dict[str, int]) -> Dict[str, Any]:
    """Augment a hit/miss counter dict with a derived ``hit_rate``.

    ``None`` before the first probe — a 0/0 rate is "no data", not 0%.
    """
    payload: Dict[str, Any] = dict(info)
    total = info.get("hits", 0) + info.get("misses", 0)
    payload["hit_rate"] = round(info["hits"] / total, 4) if total else None
    return payload


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of one :class:`ServeEngine`.

    Attributes:
        max_queue_depth: admission-queue bound; ``submit`` beyond it
            raises :class:`QueueFullError`.
        max_batch_size: requests fused into one dispatch, and the fill
            target the batcher waits for.
        max_wait_s: how long the batcher holds an unfilled *batchable*
            group open for more compatible arrivals. The throughput/
            latency dial: larger windows fill bigger batches, every
            member pays the wait. Scalar groups never wait.
        cache_entries: LRU result-cache capacity; ``0`` disables caching.
        scalar_executor: :mod:`repro.parallel` backend name for
            per-request groups (``"serial"`` or ``"thread"``;
            ``"process"`` is rejected — request closures are unpicklable).
        jobs: worker count for the scalar executor, ``None`` for the
            session default.
        default_deadline_s: deadline applied to requests submitted
            without one; ``None`` means no deadline.
        fuse_singletons: dispatch batchable *singleton* groups through
            the fused batch path too (identical answers — the batch
            solver is pinned bit-identical). Off by default: a stacked
            float64 solve of one member carries setup overhead the
            scalar path skips. Turn it on for tracing-focused
            deployments (every batchable request produces a
            ``serve.batch`` span), and for ``dtype="float32"`` engines
            serving repeat geometries — there the template/pair caches
            plus the single-precision kernel make even a fused singleton
            ~2x faster than the scalar path (streaming windowed
            re-solves are the common case).
        dtype: numeric precision of the fused batch path. ``"float64"``
            (default) is bit-identical to the scalar estimator;
            ``"float32"`` runs batched preprocess, assembly, and the
            normal-equation IRLS kernel in single precision — roughly an
            order of magnitude more throughput at batch 32, with accuracy
            bounded by property tests (~1e-4 m, far below the phase-noise
            floor). Members the float32 kernel cannot solve reliably
            degrade to exact scalar float64 solves, and the scalar
            fallback / cache / error paths are precision-independent.
    """

    max_queue_depth: int = 256
    max_batch_size: int = 32
    max_wait_s: float = 0.002
    cache_entries: int = 128
    scalar_executor: str = "serial"
    jobs: Optional[int] = None
    default_deadline_s: Optional[float] = None
    fuse_singletons: bool = False
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ValueError(f"max_queue_depth must be positive, got {self.max_queue_depth}")
        if self.max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_wait_s < 0.0:
            raise ValueError(f"max_wait_s must be non-negative, got {self.max_wait_s}")
        if self.cache_entries < 0:
            raise ValueError(f"cache_entries must be non-negative, got {self.cache_entries}")
        if self.scalar_executor not in ("serial", "thread"):
            raise ValueError(
                f"scalar_executor must be 'serial' or 'thread', got {self.scalar_executor!r}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0.0:
            raise ValueError(
                f"default_deadline_s must be positive, got {self.default_deadline_s}"
            )
        if self.dtype not in ("float64", "float32"):
            raise ValueError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )


class Ticket:
    """Caller-side handle to one submitted request.

    A thin, typed wrapper over :class:`concurrent.futures.Future`:
    :meth:`result` blocks for the report (re-raising the request's
    failure), :meth:`cancel` withdraws a still-queued request. Tickets
    resolved from the result cache are born completed.
    """

    __slots__ = ("_future",)

    def __init__(self, future: "Future[EstimationReport]") -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None) -> EstimationReport:
        """Block until the report is ready; re-raises the failure if any."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block until resolution; the failure, or ``None`` on success."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the ticket has resolved (report, failure, or cancel)."""
        return self._future.done()

    def cancel(self) -> bool:
        """Withdraw the request if the batcher has not started it."""
        return self._future.cancel()

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` won the race against dispatch."""
        return self._future.cancelled()

    def add_done_callback(self, fn: "Callable[[Future[EstimationReport]], object]") -> None:
        """Invoke ``fn`` at resolution (load generators timestamp here)."""
        self._future.add_done_callback(fn)


@dataclass
class _Item:
    """One queued request with everything its dispatch needs."""

    name: str
    config: EstimatorConfig
    key: GroupKey
    cache_key: CacheKey
    batchable: bool
    request: EstimationRequest
    future: "Future[EstimationReport]"
    enqueued: float
    deadline: Optional[float]
    request_id: Optional[str] = None
    session_key: Optional[str] = None


@dataclass
class _Stats:
    """Always-on plain counters (independent of :mod:`repro.obs` flags)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    expired: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    batches: int = 0
    batched_requests: int = 0
    scalar_requests: int = 0
    scalar_fallbacks: int = 0
    session_requests: int = 0
    session_holds: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "scalar_requests": self.scalar_requests,
            "scalar_fallbacks": self.scalar_fallbacks,
            "session_requests": self.session_requests,
            "session_holds": self.session_holds,
        }


class ServeEngine:
    """In-process serving engine with dynamic micro-batching.

    Use as a context manager (``with ServeEngine() as engine:``) or call
    :meth:`close` explicitly; close drains the queue before the batcher
    exits, so accepted requests always resolve. Constructing with
    ``start=False`` leaves the batcher stopped — queued items then only
    dispatch on :meth:`drain_once`, which tests use to pin batching
    decisions deterministically.

    ``calibration`` (optional) is a
    :class:`repro.calib.resolver.CalibrationResolver`; with one wired,
    requests naming their ``antennas`` have calibrated centers and
    offset corrections filled from the registry's latest committed
    versions at submit time (generation-stamped cache, invalidated by
    any store commit).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        start: bool = True,
        calibration: Optional["CalibrationResolver"] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._calibration = calibration
        self._queue: Deque[_Item] = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._stats = _Stats()
        self._session_inflight: Dict[str, int] = {}
        self._cache = ResultCache(self.config.cache_entries)
        # (name, config-object) -> (resolved config, config hash). Config
        # resolution + fingerprinting are pure, and serving traffic reuses
        # a handful of config objects across millions of submits, so the
        # memo turns two hot-path hashes into one dict probe. Unhashable
        # configs (raw mappings) skip the memo; bounded to keep a
        # pathological config-churn caller from growing it unboundedly.
        self._config_memo: Dict[Tuple[str, Any], Tuple[EstimatorConfig, str]] = {}
        self._executor: Executor = get_executor(
            self.config.scalar_executor, jobs=self.config.jobs
        )
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    def start(self) -> None:
        """Start the batcher thread (idempotent).

        Deferred starts (``ServeEngine(config, start=False)`` … ``start()``)
        let load generators pre-fill the admission queue and then measure
        pure dispatch throughput with deterministic batch occupancy.

        Raises:
            EngineClosedError: the engine was already closed.
        """
        with self._cv:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()
        _LIVE_ENGINES.add(self)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        request: EstimationRequest,
        config: EstimatorConfig | Mapping[str, Any] | None = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
        session_key: Optional[str] = None,
    ) -> Ticket:
        """Admit one request; returns immediately with its :class:`Ticket`.

        Config resolution happens synchronously so unknown estimators and
        malformed configs fail in the caller, not the batcher.

        ``request_id`` (optional, from the serving front end) is stamped
        on the request's dispatch spans — ``request_id=`` on scalar
        spans, a ``request_ids`` link list on fused batch spans — so the
        cross-process span store can stitch them into one trace, and it
        is bound to the logging context during dispatch.

        ``session_key`` (optional, from the streaming session layer)
        makes admission *session-affine*: requests sharing a key are
        dispatched in submission order, never reordered across dispatch
        groups — a later re-solve for one tag session cannot overtake an
        earlier one that is still queued under a different
        ``(estimator, config, dim)`` group. Grouping itself is
        unchanged, so concurrent sessions' re-solves still fuse into one
        stacked IRLS per group; a result-cache hit (identical window
        re-solved twice) resolves instantly, which cannot reorder — the
        answer is content-determined.

        Raises:
            EngineClosedError: the engine no longer admits requests.
            QueueFullError: the admission queue is at depth.
            KeyError / TypeError / ValueError: config resolution failures,
                exactly as from :func:`repro.pipeline.resolve_config`.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        if self._calibration is not None and request.antennas is not None:
            # Resolve named antennas into calibrated centers / offset
            # corrections *before* fingerprinting, so the result cache
            # keys on the resolved arrays — a recalibration commit
            # changes the fingerprint and can never serve a stale hit.
            request = self._calibration.resolve(request)
        memo_key: Optional[Tuple[str, Any]] = (name, config)
        try:
            memoized = self._config_memo.get(memo_key)
        except TypeError:
            memo_key = None
            memoized = None
        if memoized is None:
            resolved = resolve_config(name, config)
            config_hash = config_fingerprint(
                {"estimator": name, **resolved.to_dict()}
            )
            if memo_key is not None and len(self._config_memo) < 256:
                self._config_memo[memo_key] = (resolved, config_hash)
        else:
            resolved, config_hash = memoized
        cache_key: CacheKey = (name, config_hash, request.fingerprint())
        future: "Future[EstimationReport]" = Future()

        cached = self._cache.get(cache_key)
        if cached is not None:
            with self._cv:
                self._stats.submitted += 1
                self._stats.cache_hits += 1
            self._count_result("cache_hit")
            future.set_result(cached)
            return Ticket(future)

        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.monotonic()
        item = _Item(
            name=name,
            config=resolved,
            key=group_key(name, resolved, config_hash),
            cache_key=cache_key,
            batchable=is_batchable(name, resolved),
            request=request,
            future=future,
            enqueued=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            request_id=request_id,
            session_key=session_key,
        )
        with self._cv:
            if self._closed:
                raise EngineClosedError("engine is closed")
            if len(self._queue) >= self.config.max_queue_depth:
                self._stats.rejected += 1
                self._count_result("rejected")
                raise QueueFullError(
                    f"admission queue full at depth {self.config.max_queue_depth}"
                )
            self._queue.append(item)
            self._stats.submitted += 1
            if session_key is not None:
                self._stats.session_requests += 1
                self._session_inflight[session_key] = (
                    self._session_inflight.get(session_key, 0) + 1
                )
            depth = len(self._queue)
            self._cv.notify_all()
        if session_key is not None:
            future.add_done_callback(
                lambda _future, key=session_key: self._session_done(key)
            )
        if metrics_enabled():
            get_registry().gauge("serve.queue_depth").set(depth)
        return Ticket(future)

    def _session_done(self, key: str) -> None:
        """Drop one inflight count for ``key`` when its future resolves."""
        with self._cv:
            count = self._session_inflight.get(key, 0) - 1
            if count <= 0:
                self._session_inflight.pop(key, None)
            else:
                self._session_inflight[key] = count

    def session_inflight(self, key: str) -> int:
        """Unresolved requests currently admitted under ``key``."""
        with self._cv:
            return self._session_inflight.get(key, 0)

    def estimate(
        self,
        name: str,
        request: EstimationRequest,
        config: EstimatorConfig | Mapping[str, Any] | None = None,
        deadline_s: Optional[float] = None,
    ) -> EstimationReport:
        """Blocking convenience: :meth:`submit` then wait for the report."""
        return self.submit(name, request, config=config, deadline_s=deadline_s).result()

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, drain accepted requests, join the batcher.

        Returns ``True`` when the engine is fully drained and its batcher
        thread has exited (or never existed). Returns ``False`` when the
        join timed out — the batcher is still mid-dispatch, tickets may
        still be unresolved, and :attr:`drained` stays ``False``; calling
        ``close`` again retries the join. The network drain path relies
        on this signal instead of assuming the daemon thread finished.
        """
        with self._cv:
            if self._closed and self._thread is None:
                return True
            self._closed = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                return False
            self._thread = None
        else:
            # Never-started engine (tests): resolve what was accepted.
            while self.drain_once():
                pass
        _LIVE_ENGINES.discard(self)
        return True

    @property
    def drained(self) -> bool:
        """Whether the engine is closed with an empty queue and no batcher.

        ``close()`` returning ``True`` implies this; a timed-out close
        leaves it ``False`` until a retry succeeds.
        """
        with self._cv:
            return self._closed and not self._queue and self._thread is None

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Always-on counters plus queue depth and cache info.

        ``template_cache`` / ``pair_cache`` report the process-wide
        geometry caches the fused batch path runs through
        (:mod:`repro.core.batch_prepare` / :mod:`repro.core.sweep`) —
        their hit rates are the repeat-trajectory signal operators watch
        when serve throughput drops.
        """
        with self._cv:
            payload: Dict[str, Any] = self._stats.as_dict()
            payload["queue_depth"] = len(self._queue)
            payload["sessions_inflight"] = len(self._session_inflight)
        payload["cache"] = self._cache.info()
        payload["template_cache"] = _with_hit_rate(template_cache_info())
        payload["pair_cache"] = _with_hit_rate(pair_cache_info())
        if self._calibration is not None:
            payload["calibration"] = self._calibration.stats()
        return payload

    def clear_cache(self) -> None:
        """Drop every cached report (benchmark hygiene between phases)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # batcher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        """Batcher thread: group, window-wait, dispatch, repeat."""
        while True:
            group = self._next_group(block=True)
            if group is None:
                return
            self._dispatch(group)

    def drain_once(self) -> int:
        """Dispatch one ready group without the batcher thread.

        Deterministic single-step used by tests (``start=False``) and the
        closing drain. Returns the number of requests dispatched (0 when
        the queue is empty).
        """
        group = self._next_group(block=False)
        if group is None:
            return 0
        self._dispatch(group)
        return len(group)

    def _next_group(self, block: bool) -> Optional[List[_Item]]:
        """Pop the head-of-line group, window-waiting to fill batchables.

        Only the batcher pops, so the head item is stable across waits.
        Returns ``None`` when closed with an empty queue (``block=True``)
        or immediately on an empty queue (``block=False``).
        """
        with self._cv:
            if block:
                while not self._queue and not self._closed:
                    self._cv.wait()
            if not self._queue:
                return None
            head = self._queue[0]
            if block and head.batchable and self.config.max_wait_s > 0.0:
                window_end = head.enqueued + self.config.max_wait_s
                while not self._closed:
                    matched = sum(1 for item in self._queue if item.key == head.key)
                    if matched >= self.config.max_batch_size:
                        break
                    remaining = window_end - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._cv.wait(remaining)
            group: List[_Item] = []
            kept: List[_Item] = []
            # Session affinity: once a session's request is passed over
            # (different group), its later requests must not jump ahead
            # of it into this dispatch — reads of one session never
            # interleave out of submission order.
            held_sessions: set[str] = set()
            session_holds = 0
            for item in self._queue:
                blocked = (
                    item.session_key is not None and item.session_key in held_sessions
                )
                if (
                    item.key == head.key
                    and len(group) < self.config.max_batch_size
                    and not blocked
                ):
                    group.append(item)
                else:
                    if item.session_key is not None:
                        if blocked and item.key == head.key:
                            session_holds += 1
                        held_sessions.add(item.session_key)
                    kept.append(item)
            self._stats.session_holds += session_holds
            self._queue = deque(kept)
            depth = len(self._queue)
        if metrics_enabled():
            registry = get_registry()
            registry.gauge("serve.queue_depth").set(depth)
            registry.histogram(
                "serve.batch_size", buckets=BATCH_SIZE_BUCKETS, estimator=head.name
            ).observe(float(len(group)))
            registry.histogram(
                "serve.batch_wait_seconds", buckets=LATENCY_BUCKETS_S, estimator=head.name
            ).observe(time.monotonic() - head.enqueued)
        return group

    def _dispatch(self, group: List[_Item]) -> None:
        """Execute one popped group, resolving every member's future."""
        live: List[_Item] = []
        now = time.monotonic()
        for item in group:
            if item.deadline is not None and now > item.deadline:
                with self._cv:
                    self._stats.expired += 1
                self._count_result("expired")
                item.future.set_exception(
                    DeadlineExceededError(
                        f"deadline exceeded after {now - item.enqueued:.4f}s in queue"
                    )
                )
                continue
            if not item.future.set_running_or_notify_cancel():
                with self._cv:
                    self._stats.cancelled += 1
                self._count_result("cancelled")
                continue
            live.append(item)
        if not live:
            return
        with self._cv:
            self._stats.batches += 1
        if live[0].batchable and (len(live) > 1 or self.config.fuse_singletons):
            self._dispatch_batched(live)
        else:
            self._dispatch_scalar(live)

    def _dispatch_batched(self, live: List[_Item]) -> None:
        """Fused dispatch with per-member scalar fallback."""
        with self._cv:
            self._stats.batched_requests += len(live)
        estimator = cast(LionEstimator, create_estimator(live[0].name, live[0].config))
        request_ids = [item.request_id for item in live]
        with span(
            "serve.batch",
            estimator=live[0].name,
            size=len(live),
            request_ids=tuple(rid for rid in request_ids if rid),
        ):
            try:
                outcomes: Sequence[EstimationReport | BaseException] = execute_batch(
                    estimator,
                    [item.request for item in live],
                    request_ids=request_ids,
                    dtype=self.config.dtype,
                )
            except Exception:
                # Unexpected whole-batch failure: every member retries
                # alone so the error surfaced is the scalar path's own.
                self._fallback_scalar(live)
                return
        for item, outcome in zip(live, outcomes):
            if isinstance(outcome, EstimationReport):
                self._resolve(item, outcome)
            else:
                self._fallback_scalar([item])

    def _fallback_scalar(self, items: List[_Item]) -> None:
        """Re-run members individually; scalar truth for errors too."""
        with self._cv:
            self._stats.scalar_fallbacks += len(items)
        if metrics_enabled():
            get_registry().counter("serve.scalar_fallback_total").inc(len(items))
        self._execute_scalar(items)

    def _dispatch_scalar(self, live: List[_Item]) -> None:
        """Per-request dispatch for non-batchable (or singleton) groups."""
        with self._cv:
            self._stats.scalar_requests += len(live)
        self._execute_scalar(live)

    def _execute_scalar(self, items: List[_Item]) -> None:
        """Run each member through its own estimator, isolating failures."""

        def run_one(item: _Item) -> EstimationReport:
            with bind_request_id(item.request_id):
                with span("serve.scalar", estimator=item.name, request_id=item.request_id):
                    return create_estimator(item.name, item.config).estimate(item.request)

        outcomes = self._executor.map_catching(run_one, items)
        for item, (ok, payload) in zip(items, outcomes):
            if ok:
                self._resolve(item, payload)
            else:
                with self._cv:
                    self._stats.failed += 1
                self._count_result("error")
                with bind_request_id(item.request_id):
                    _logger.debug(
                        "request failed: estimator=%s error=%s: %s",
                        item.name,
                        type(payload).__name__,
                        payload,
                    )
                item.future.set_exception(payload)

    def _resolve(self, item: _Item, report: EstimationReport) -> None:
        """Cache and deliver one successful report."""
        self._cache.put(item.cache_key, report)
        with self._cv:
            self._stats.completed += 1
        self._count_result("ok")
        item.future.set_result(report)

    @staticmethod
    def _count_result(result: str) -> None:
        if metrics_enabled():
            get_registry().counter("serve.requests_total", result=result).inc()
