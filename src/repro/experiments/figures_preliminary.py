"""Figures 2-4: the preliminary studies motivating phase calibration.

* Fig. 2 — the measured phase valley sits centimeters away from the
  physical center: the phase-center inconsistency.
* Fig. 3 — different antenna-tag hardware pairs report different constant
  phases: the phase-offset problem.
* Fig. 4 — a two-measurement differential hologram concentrates
  likelihood along a hyperbola, and weighting sharpens it; building even a
  small hologram at 1 mm already costs ~a second.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.pipeline import hologram_likelihood
from repro.datasets.synthetic import simulate_scan, simulate_static_reads
from repro.experiments.metrics import ExperimentResult
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.rf.tag import Tag
from repro.signalproc.smoothing import smooth_phase_profile
from repro.signalproc.stats import circular_mean
from repro.signalproc.unwrap import unwrap_phase
from repro.trajectory.linear import LinearTrajectory


def run_fig02_phase_center(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 2: unwrapped-phase valley offset vs the physical center.

    The antenna's physical center is the origin; a tag sweeps the
    horizontal (x) and vertical (z) axes at 65 cm depth. The arg-min of
    the unwrapped phase marks where the tag passes closest to the *actual*
    phase center — 2-3 cm off the origin.
    """
    rng = np.random.default_rng(seed)
    displacement = (0.024, 0.008, -0.027)
    antenna = Antenna(
        physical_center=(0.0, 0.0, 0.0),
        center_displacement=displacement,
        phase_offset_rad=1.0,
        boresight=(0.0, 1.0, 0.0),
        name="fig2-antenna",
    )
    read_rate = 40.0 if fast else 120.0
    noise = GaussianPhaseNoise(0.05)
    result = ExperimentResult(
        figure_id="fig02",
        title="Phase valley offset from the physical center (65 cm depth)",
        columns=["scan_axis", "valley_offset_cm", "true_displacement_cm"],
        paper_expectation=(
            "measured valleys appear about 2-3 cm away from the origin on "
            "both horizontal and vertical scans"
        ),
    )
    scans = {
        "horizontal(x)": (LinearTrajectory((-0.5, 0.65, 0.0), (0.5, 0.65, 0.0)), 0),
        "vertical(z)": (LinearTrajectory((0.0, 0.65, -0.5), (0.0, 0.65, 0.5)), 2),
    }
    for label, (trajectory, axis) in scans.items():
        scan = simulate_scan(
            trajectory, antenna, tag=Tag(), rng=rng, noise=noise, read_rate_hz=read_rate
        )
        # Smooth over ~0.5 s of reads (~5 cm of travel) so the argmin finds
        # the profile's true valley instead of a noise dip near it.
        window = max(int(read_rate * 0.5) | 1, 15)
        profile = smooth_phase_profile(unwrap_phase(scan.phases), window=window)
        valley = float(scan.positions[int(np.argmin(profile)), axis])
        result.add_row(
            scan_axis=label,
            valley_offset_cm=valley * 100.0,
            true_displacement_cm=displacement[axis] * 100.0,
        )
    return result


def run_fig03_phase_offset(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 3: per antenna-tag pair static phase measurements.

    Four antennas x four tags, each pair read 500 times at 1 m. Both the
    antenna rows and tag columns shift the reported phase — and the shifts
    compose, so the *difference* between two antennas is tag-independent.
    """
    rng = np.random.default_rng(seed)
    reads = 100 if fast else 500
    antennas = [
        Antenna(
            physical_center=(0.0, 0.0, 0.0),
            phase_offset_rad=float(rng.uniform(0.0, TWO_PI)),
            boresight=(0.0, 1.0, 0.0),
            name=f"A{i + 1}",
        )
        for i in range(4)
    ]
    tags = [Tag.random(rng, epc=f"T{i + 1}") for i in range(4)]
    result = ExperimentResult(
        figure_id="fig03",
        title="Static phase per antenna-tag pair (1 m separation)",
        columns=["antenna", "tag", "mean_phase_rad", "std_rad"],
        paper_expectation=(
            "both antennas and tags show intrinsic hardware phase shifts; "
            "500 reads per pair cluster tightly around a pair-specific value"
        ),
    )
    for antenna in antennas:
        for tag in tags:
            records = simulate_static_reads(
                antenna, tag, (0.0, 1.0, 0.0), reads, rng, noise=GaussianPhaseNoise(0.05)
            )
            phases = np.array([r.phase_rad for r in records])
            result.add_row(
                antenna=antenna.name,
                tag=tag.epc,
                mean_phase_rad=circular_mean(phases),
                std_rad=float(np.std(np.unwrap(np.sort(phases)))) if phases.size else 0.0,
            )
    return result


def run_fig04_hologram(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 4: the two-measurement hologram and the effect of weighting.

    Tag positions (-0.3, 0) and (0.3, 0), antenna at (0.5, 0.5), 1 mm grid
    (paper). High-likelihood cells trace the hyperbola of the measured
    phase difference; squaring the coherence (a simple augmentation)
    thins the ridge. Also times the build, the paper's ~0.8 s observation.
    """
    rng = np.random.default_rng(seed)
    wavelength = DEFAULT_WAVELENGTH_M
    tag_positions = np.array([[-0.3, 0.0], [0.3, 0.0]])
    antenna_position = np.array([0.5, 0.5])
    k = 2.0 * TWO_PI / wavelength
    distances = np.linalg.norm(tag_positions - antenna_position, axis=1)
    phases = np.mod(k * distances + rng.normal(0.0, 0.02, size=2), TWO_PI)

    grid_size = 0.004 if fast else 0.001
    axes = (
        np.arange(-0.5, 0.5 + grid_size, grid_size),
        np.arange(0.0, 1.0 + grid_size, grid_size),
    )
    mesh = np.meshgrid(*axes, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)

    start = time.perf_counter()
    likelihood = hologram_likelihood(
        tag_positions, phases, cells, wavelength_m=wavelength
    )
    build_seconds = time.perf_counter() - start

    ridge = likelihood > 0.95
    sharpened = likelihood**4 > 0.95
    # Verify the ridge is the hyperbola: |d1 - d2| consistent (mod lambda/2).
    d1 = np.linalg.norm(cells - tag_positions[0], axis=1)
    d2 = np.linalg.norm(cells - tag_positions[1], axis=1)
    measured_diff = (phases[1] - phases[0]) / k
    residual = np.abs(
        np.mod((d2 - d1) - measured_diff + wavelength / 4.0, wavelength / 2.0)
        - wavelength / 4.0
    )
    on_hyperbola = float(np.mean(residual[ridge] < grid_size * 2.0)) if ridge.any() else 0.0

    result = ExperimentResult(
        figure_id="fig04",
        title="Differential hologram of two measurements (hyperbola ridge)",
        columns=["quantity", "value"],
        paper_expectation=(
            "high-likelihood grids distribute along hyperbolas; weights thin "
            "the candidate set; generating this simple hologram takes ~0.8 s "
            "at 1 mm grid"
        ),
        notes="weighting emulated by coherence sharpening (likelihood^4)",
    )
    result.add_row(quantity="grid_cells", value=int(cells.shape[0]))
    result.add_row(quantity="build_seconds", value=float(build_seconds))
    result.add_row(quantity="ridge_cells_unweighted", value=int(np.count_nonzero(ridge)))
    result.add_row(quantity="ridge_cells_weighted", value=int(np.count_nonzero(sharpened)))
    result.add_row(quantity="ridge_on_hyperbola_fraction", value=on_hyperbola)
    return result
