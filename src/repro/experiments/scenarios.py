"""Shared evaluation geometry and scenario builders.

The paper's testbed (Sec. V-A): a 2.5 m sliding track along the x-axis,
tag at 10 cm/s read at >100 Hz, antenna at 1 m height facing the track,
depth (y) 0.6-1.6 m. These builders pin that geometry once so every figure
runner shares it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.datasets.synthetic import ScanData, simulate_scan
from repro.geometry.transforms import unit
from repro.rf.antenna import Antenna
from repro.rf.multipath import Reflector, WallReflector
from repro.rf.noise import PhaseNoiseModel, SnrScaledPhaseNoise
from repro.rf.tag import Tag
from repro.trajectory.linear import LinearTrajectory


@dataclass(frozen=True)
class EvaluationGeometry:
    """The fixed testbed geometry.

    Attributes:
        track_length_m: sliding-track extent (paper: 2.5 m).
        default_depth_m: antenna depth behind the track (paper default 0.8).
        antenna_height_m: both track and antenna sit at 1 m height; we set
            the track plane to z = 0 so the antenna default z is 0 too.
    """

    track_length_m: float = 2.5
    default_depth_m: float = 0.8
    antenna_height_m: float = 0.0


def standard_antenna(
    rng: np.random.Generator,
    depth_m: float = 0.8,
    x_m: float = 0.0,
    height_m: float = 0.0,
    displacement_scale_m: float = 0.025,
    name: str = "antenna",
) -> Antenna:
    """The evaluation antenna: behind the track at ``(x, depth, height)``.

    Boresight faces the track (-y). Hidden displacement magnitude defaults
    to ~2.5 cm per Fig. 2; phase offset is uniform per Fig. 3.
    """
    direction = unit(rng.normal(size=3), name="displacement direction")
    displacement = rng.uniform(0.02, 0.03) * direction
    return Antenna(
        physical_center=(x_m, depth_m, height_m),
        center_displacement=tuple(displacement),
        phase_offset_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
        boresight=(0.0, -1.0, 0.0),
        name=name,
    )


def make_room_reflectors(
    antenna: Antenna,
    strength: float = 0.25,
    scatterer_strength: float = 0.0,
    scatterer_position: "tuple[float, float, float] | None" = None,
) -> List[Reflector]:
    """Image-source reflectors approximating a cluttered lab.

    A side wall 2 m to the antenna's left and a back wall 1.5 m behind it;
    their *relative* influence on reads grows with depth as the LoS power
    falls — the Fig. 14(b) mechanism.

    Optionally a **near-track point scatterer** (metal shelf corner, cart)
    whose echo path length varies strongly along the track: it corrupts
    the reads taken near it far more than the rest of the scan. This
    spatially *localized* corruption is what the WLS weighting exists to
    suppress (Fig. 15).
    """
    center = antenna.phase_center
    side_wall = WallReflector(
        point_on_plane=(center[0] - 2.0, center[1], center[2]),
        normal=(1.0, 0.0, 0.0),
        amplitude=strength,
    )
    back_wall = WallReflector(
        point_on_plane=(center[0], center[1] + 1.5, center[2]),
        normal=(0.0, 1.0, 0.0),
        amplitude=strength * 0.8,
    )
    # The floor 1 m below the antenna (paper: antenna at 1 m height). Its
    # bounce leaves closer to boresight as depth grows, so the departure
    # gain - and with it the echo - rises with depth.
    floor = WallReflector(
        point_on_plane=(center[0], center[1], center[2] - 1.0),
        normal=(0.0, 0.0, 1.0),
        amplitude=strength,
    )
    reflectors = [
        side_wall.image_for(center),
        back_wall.image_for(center),
        floor.image_for(center),
    ]
    if scatterer_strength > 0.0:
        if scatterer_position is None:
            # Off to the side of the track, near one end.
            scatterer_position = (center[0] - 0.7, 0.25, center[2])
        reflectors.append(
            Reflector(
                image_position=scatterer_position,
                amplitude=scatterer_strength,
                phase_shift_rad=float(np.pi),
            )
        )
    return reflectors


def make_clutter_scatterers(
    rng: np.random.Generator,
    count: int = 6,
    strength: float = 0.15,
    region_x: tuple[float, float] = (-1.5, 1.5),
    region_y: tuple[float, float] = (-0.5, 0.6),
    region_z: tuple[float, float] = (-1.0, 0.4),
) -> List[Reflector]:
    """Diffuse clutter: random point scatterers around the track area.

    A lab is not two perfect mirrors — shelves, carts and fixtures act as
    weak point scatterers spread through the space. Their echoes arrive
    from many directions with pseudo-random phase structure, producing the
    heterogeneous corruption that residual weighting (Fig. 15) and
    adaptive parameter selection (Fig. 16-18) are designed to absorb.
    Scatterers far off the antenna's boresight are automatically
    suppressed by the channel's departure-gain term, so the *effective*
    clutter grows with depth as the beam cone widens — the Fig. 14(b)
    mechanism.

    The default region puts clutter around and behind the track (the
    antenna looks along -y from positive depth).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    scatterers: List[Reflector] = []
    for _ in range(count):
        position = (
            float(rng.uniform(*region_x)),
            float(rng.uniform(*region_y)),
            float(rng.uniform(*region_z)),
        )
        scatterers.append(
            Reflector(
                image_position=position,
                amplitude=float(rng.uniform(0.5, 1.0) * strength),
                phase_shift_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
            )
        )
    return scatterers


def make_conveyor_scan(
    antenna: Antenna,
    rng: np.random.Generator,
    track_half_length_m: float = 1.25,
    noise: PhaseNoiseModel | None = None,
    reflectors: Sequence[Reflector] = (),
    tag: Tag | None = None,
    read_rate_hz: float = 120.0,
) -> ScanData:
    """One pass of the sliding track in front of ``antenna``.

    The track runs along x at y = 0, z = 0, centered on x = 0 (the paper
    centers the scanning range on the antenna's x).

    Args:
        antenna: the interrogating antenna.
        rng: random generator.
        track_half_length_m: half the sweep extent.
        noise: phase-noise model; defaults to the SNR-scaled model so
            off-beam reads are noisier, as on hardware.
        reflectors: multipath image sources.
        tag: tag; random hardware offset when omitted.
        read_rate_hz: reader sampling rate.
    """
    if noise is None:
        noise = SnrScaledPhaseNoise(
            base_std_rad=0.1, reference_distance_m=antenna.physical_center[1]
        )
    trajectory = LinearTrajectory(
        (-track_half_length_m, 0.0, 0.0), (track_half_length_m, 0.0, 0.0)
    )
    return simulate_scan(
        trajectory,
        antenna,
        tag=tag,
        rng=rng,
        noise=noise,
        reflectors=reflectors,
        read_rate_hz=read_rate_hz,
    )
