"""Extension studies (beyond the paper's figures).

These runners document the behaviour of the library's extensions with the
same harness the paper figures use, so `lion run ext_online` works like
`lion run fig13a`:

* ``ext_online`` — streaming-estimator convergence along the scan and its
  per-read cost vs the batch solver;
* ``ext_multiref`` — separate-sweep (no stitching) and frequency-hopped
  localization vs the stitched single-datum pipeline;
* ``ext_wander`` — the calibration floor imposed by an angle-dependent
  phase center (the point-center assumption's cost).
"""

from __future__ import annotations

import time

import numpy as np

from repro import pipeline
from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI, wavelength_for_frequency
from repro.datasets.synthetic import simulate_scan
from repro.experiments.metrics import ExperimentResult, distance_error
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, NoPhaseNoise, SnrScaledPhaseNoise
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan


def run_ext_online(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Streaming convergence: error vs reads, plus per-read cost."""
    rng = np.random.default_rng(seed)
    repetitions = 3 if fast else 10
    read_rate = 60.0 if fast else 120.0
    result = ExperimentResult(
        figure_id="ext_online",
        title="Streaming (RLS) localization: error vs reads consumed",
        columns=["fraction_of_scan", "mean_error_cm"],
        paper_expectation=(
            "extension study (no paper counterpart): the streaming estimate "
            "converges to batch accuracy before the scan ends"
        ),
    )
    checkpoints = (0.4, 0.6, 0.8, 1.0)
    errors = {fraction: [] for fraction in checkpoints}
    batch_errors = []
    per_read_ms = []
    for _ in range(repetitions):
        antenna = Antenna(physical_center=(0.1, 0.9, 0.0), boresight=(0, -1, 0))
        truth = antenna.phase_center[:2]
        scan = simulate_scan(
            LinearTrajectory((-0.6, 0, 0), (0.6, 0, 0)), antenna, rng=rng,
            noise=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.9),
            read_rate_hz=read_rate,
        )
        online = pipeline.create_estimator(
            "lion-online", {"dim": 2, "pair_lag": max(len(scan) // 5, 10)}
        )
        marks = {int(fraction * len(scan)) - 1: fraction for fraction in checkpoints}
        start = time.perf_counter()
        for index, (position, phase) in enumerate(zip(scan.positions, scan.phases)):
            online.ingest(position, phase)
            if index in marks and online.ready():
                snapshot = online.snapshot()
                errors[marks[index]].append(distance_error(snapshot.position, truth))
        per_read_ms.append((time.perf_counter() - start) * 1000.0 / len(scan))
        batch = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest.from_scan(scan),
            {"dim": 2, "interval_m": 0.25},
        )
        batch_errors.append(distance_error(batch.position, truth))
    for fraction in checkpoints:
        values = errors[fraction]
        if values:
            result.add_row(
                fraction_of_scan=fraction,
                mean_error_cm=float(np.mean(values)) * 100.0,
            )
    result.notes = (
        f"batch reference {float(np.mean(batch_errors)) * 100:.2f} cm; "
        f"streaming update {float(np.mean(per_read_ms)):.3f} ms/read"
    )
    return result


def run_ext_multiref(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Separate sweeps & frequency hops vs the stitched pipeline."""
    rng = np.random.default_rng(seed)
    repetitions = 3 if fast else 8
    read_rate = 30.0 if fast else 60.0
    stitched, separate, hopped = [], [], []
    for _ in range(repetitions):
        antenna = Antenna(physical_center=(0.0, 0.8, 0.1), boresight=(0, -1, 0))
        truth = antenna.phase_center

        scan = simulate_scan(
            ThreeLineScan(-0.5, 0.5), antenna, rng=rng,
            noise=GaussianPhaseNoise(0.05), read_rate_hz=read_rate,
        )
        batch = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest.from_scan(scan),
            {"dim": 3, "interval_m": 0.25},
        )
        stitched.append(distance_error(batch.position, truth))

        # Same line geometry, independent phase datums per line.
        keep = ~scan.exclude_mask
        positions = scan.positions[keep]
        segments = scan.segment_ids[keep]
        runs = np.searchsorted(np.unique(segments), segments)
        phases = np.zeros(positions.shape[0])
        for run in np.unique(runs):
            members = np.flatnonzero(runs == run)
            distances = np.linalg.norm(positions[members] - truth, axis=1)
            phases[members] = np.mod(
                2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distances
                + rng.uniform(0, TWO_PI)
                + rng.normal(0, 0.05, members.size),
                TWO_PI,
            )
        solution = pipeline.estimate(
            "lion-multiref",
            pipeline.EstimationRequest(
                positions=positions, phases_rad=phases, run_ids=runs
            ),
            {"dim": 3, "interval_m": 0.25},
        )
        separate.append(distance_error(solution.position, truth))

        # Frequency-hopped circle scan in 2D.
        angles = np.linspace(0, 2 * np.pi, 300, endpoint=False)
        circle = 0.3 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        hop_runs = np.repeat([0, 1], 150)
        wavelengths = {
            0: wavelength_for_frequency(903e6),
            1: wavelength_for_frequency(925e6),
        }
        hop_phases = np.zeros(300)
        for run in (0, 1):
            members = hop_runs == run
            distances = np.linalg.norm(circle[members] - truth[:2], axis=1)
            hop_phases[members] = np.mod(
                2.0 * TWO_PI / wavelengths[run] * distances
                + rng.uniform(0, TWO_PI)
                + rng.normal(0, 0.05, int(members.sum())),
                TWO_PI,
            )
        hop_solution = pipeline.estimate(
            "lion-multiref",
            pipeline.EstimationRequest(
                positions=circle, phases_rad=hop_phases, run_ids=hop_runs
            ),
            {"dim": 2, "interval_m": 0.2, "wavelengths_by_run": wavelengths},
        )
        hopped.append(distance_error(hop_solution.position, truth[:2]))

    result = ExperimentResult(
        figure_id="ext_multiref",
        title="Multi-reference localization vs the stitched pipeline",
        columns=["variant", "mean_error_cm"],
        paper_expectation=(
            "extension study: separate sweeps and frequency hops localize "
            "without phase stitching, at a modest accuracy cost for the "
            "trilaterated coordinates"
        ),
    )
    result.add_row(variant="stitched three-line (paper)", mean_error_cm=float(np.mean(stitched)) * 100.0)
    result.add_row(variant="separate sweeps (multiref)", mean_error_cm=float(np.mean(separate)) * 100.0)
    result.add_row(variant="frequency-hopped 2D (multiref)", mean_error_cm=float(np.mean(hopped)) * 100.0)
    return result


def run_ext_wander(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Noiseless calibration floor vs phase-center angle wander."""
    read_rate = 20.0 if fast else 40.0
    result = ExperimentResult(
        figure_id="ext_wander",
        title="Calibration floor vs angle-dependent phase-center wander",
        columns=["wander_mm", "floor_error_cm"],
        paper_expectation=(
            "extension study: the paper's point phase center is an "
            "idealisation; with a wandering center, calibration converges "
            "to a bounded effective center whose error grows with the wander"
        ),
    )
    for wander_mm in (0, 2, 5, 10, 20):
        antenna = Antenna(
            physical_center=(0.0, 0.8, 0.0),
            boresight=(0, -1, 0),
            center_wander_m=wander_mm / 1000.0,
        )
        scan = simulate_scan(
            ThreeLineScan(-0.5, 0.5), antenna,
            rng=np.random.default_rng(seed), noise=NoPhaseNoise(),
            read_rate_hz=read_rate,
        )
        report = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest.from_scan(scan),
            {"dim": 3, "interval_m": 0.25},
        )
        result.add_row(
            wander_mm=wander_mm,
            floor_error_cm=distance_error(report.position, antenna.phase_center) * 100.0,
        )
    return result
