"""Generic Monte-Carlo evaluation harness.

Every figure runner repeats a scenario over random draws and aggregates
errors; this module factors that pattern into a reusable, testable
utility with confidence intervals, so new studies (and downstream users'
own evaluations) don't re-implement the loop. Trials run
deterministically: trial ``k`` receives ``default_rng(seed + k)``, so the
draw a trial sees depends only on ``(seed, k)`` — never on which worker
ran it. Fanning trials out over the executor backends of
:mod:`repro.parallel` therefore yields bit-identical results to the
serial loop.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro import pipeline
from repro.obs import (
    collect_manifest,
    get_registry,
    metrics_enabled,
    span,
    tracing_enabled,
)
from repro.parallel import Executor, get_executor

#: A trial returns one or more named scalar outcomes (e.g. per-method errors).
TrialFunction = Callable[[np.random.Generator], Dict[str, float]]

#: A workload draws one scene: the shared request plus the ground truth.
WorkloadFunction = Callable[
    [np.random.Generator], Tuple[pipeline.EstimationRequest, np.ndarray]
]

#: One comparison entry: a registry name, or ``(name, config_dict)``.
EstimatorEntry = Union[str, Tuple[str, Union[Mapping[str, object], None]]]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregated outcomes of one named metric.

    Attributes:
        name: the metric key.
        samples: raw per-trial values (NaNs from failed trials removed).
        mean / std / median: the usual statistics.
        ci_low / ci_high: bootstrap confidence interval on the mean.
        failures: trials that raised or returned NaN for this metric.
    """

    name: str
    samples: np.ndarray
    mean: float
    std: float
    median: float
    ci_low: float
    ci_high: float
    failures: int


@dataclass(frozen=True)
class MonteCarloResult:
    """All metrics of a study, keyed by name.

    Attributes:
        summaries: per-metric aggregates, keyed by metric name.
        trials: requested trial count.
        manifest: :class:`repro.obs.RunManifest` provenance of the run
            (git SHA, seed, jobs, config hash, package versions) as a
            plain dict — benchmarks embed it into their ``BENCH_*.json``.
        timing: wall-clock summary: ``wall_seconds``, ``trials``, and
            ``trials_per_second``.
    """

    summaries: Dict[str, MonteCarloSummary]
    trials: int
    manifest: Dict[str, object] | None = None
    timing: Dict[str, float] | None = None

    def __getitem__(self, name: str) -> MonteCarloSummary:
        return self.summaries[name]

    def format_table(self) -> str:
        """Aligned text table of all metrics."""
        header = f"{'metric':<24} {'mean':>10} {'std':>10} {'median':>10} {'95% CI':>23} {'n':>5}"
        lines = [header, "-" * len(header)]
        for summary in self.summaries.values():
            ci = f"[{summary.ci_low:.4g}, {summary.ci_high:.4g}]"
            lines.append(
                f"{summary.name:<24} {summary.mean:>10.4g} {summary.std:>10.4g} "
                f"{summary.median:>10.4g} {ci:>23} {summary.samples.size:>5}"
            )
        return "\n".join(lines)


def _bootstrap_ci(
    samples: np.ndarray,
    rng: np.random.Generator,
    confidence: float,
    resamples: int,
) -> tuple[float, float]:
    if samples.size == 1:
        return float(samples[0]), float(samples[0])
    means = np.empty(resamples)
    for index in range(resamples):
        draw = rng.choice(samples, size=samples.size, replace=True)
        means[index] = float(np.mean(draw))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.percentile(means, alpha * 100.0)),
        float(np.percentile(means, (1.0 - alpha) * 100.0)),
    )


def _execute_trial(
    trial: TrialFunction, seed: int, k: int
) -> Tuple[str, Dict[str, float] | BaseException]:
    """Run trial ``k`` with its own generator; never raises.

    Module-level (and dispatched via :func:`functools.partial`) so the
    process backend can pickle it. Exceptions are captured and returned
    so failure accounting stays in the coordinating process regardless of
    backend.
    """
    rng = np.random.default_rng(seed + k)
    if tracing_enabled():
        with span("trial", index=k):
            try:
                return ("ok", trial(rng))
            except Exception as error:
                return ("error", error)
    try:
        return ("ok", trial(rng))
    except Exception as error:
        return ("error", error)


def run_monte_carlo(
    trial: TrialFunction,
    trials: int,
    seed: int = 0,
    confidence: float = 0.95,
    bootstrap_resamples: int = 500,
    tolerate_failures: bool = True,
    bootstrap_seed: int | None = None,
    executor: str | Executor | None = "serial",
    jobs: int | None = None,
) -> MonteCarloResult:
    """Run ``trial`` repeatedly and aggregate its named outcomes.

    Args:
        trial: callable receiving a per-trial generator and returning a
            dict of scalar outcomes. Raising marks the trial failed.
        trials: number of repetitions.
        seed: base seed; trial ``k`` uses ``default_rng(seed + k)``.
        confidence: bootstrap CI level for the mean.
        bootstrap_resamples: bootstrap resampling count.
        tolerate_failures: when False, a raising trial propagates (the
            earliest failed trial's exception, on every backend).
        bootstrap_seed: explicit seed for the bootstrap-CI resampling;
            defaults to a value derived from ``seed``. Fix it to get
            identical CIs for identical samples across studies.
        executor: backend for fanning trials out — ``"serial"``,
            ``"thread"``, ``"process"``, or a prebuilt
            :class:`repro.parallel.Executor`. Results are bit-identical
            across backends; the process backend needs a picklable
            (module-level) ``trial``.
        jobs: worker count for pool backends; defaults to the CLI
            ``--jobs`` value, ``LION_JOBS``, or the CPU count.

    Raises:
        ValueError: for a non-positive trial count, a bad confidence
            level, or when every trial failed.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")

    runner = get_executor(executor, jobs=jobs)
    start = time.perf_counter()
    with span("monte_carlo", trials=trials, seed=seed, backend=runner.name):
        raw = runner.map(functools.partial(_execute_trial, trial, seed), range(trials))
    wall_seconds = time.perf_counter() - start

    collected: Dict[str, List[float]] = {}
    failures: Dict[str, int] = {}
    failed_trials = 0
    for status, payload in raw:
        if status == "error":
            if not tolerate_failures:
                raise payload
            failed_trials += 1
            continue
        for name, value in payload.items():
            collected.setdefault(name, [])
            failures.setdefault(name, 0)
            if np.isfinite(value):
                collected[name].append(float(value))
            else:
                failures[name] += 1
    if metrics_enabled():
        registry = get_registry()
        registry.counter("monte_carlo.trials_total", status="ok").inc(
            trials - failed_trials
        )
        registry.counter("monte_carlo.trials_total", status="failed").inc(failed_trials)
    if not collected or all(len(v) == 0 for v in collected.values()):
        raise ValueError("every trial failed; nothing to aggregate")

    if bootstrap_seed is None:
        bootstrap_seed = seed ^ 0x5EED
    ci_rng = np.random.default_rng(bootstrap_seed)
    summaries: Dict[str, MonteCarloSummary] = {}
    for name, values in collected.items():
        samples = np.asarray(values, dtype=float)
        if samples.size == 0:
            continue
        low, high = _bootstrap_ci(samples, ci_rng, confidence, bootstrap_resamples)
        summaries[name] = MonteCarloSummary(
            name=name,
            samples=samples,
            mean=float(np.mean(samples)),
            std=float(np.std(samples)),
            median=float(np.median(samples)),
            ci_low=low,
            ci_high=high,
            failures=failures.get(name, 0) + failed_trials,
        )
    manifest = collect_manifest(
        seed=seed,
        jobs=getattr(runner, "jobs", 1),
        config={
            "trials": trials,
            "confidence": confidence,
            "bootstrap_resamples": bootstrap_resamples,
            "bootstrap_seed": bootstrap_seed,
            "executor": runner.name,
        },
    )
    timing = {
        "wall_seconds": wall_seconds,
        "trials": float(trials),
        "trials_per_second": trials / wall_seconds if wall_seconds > 0 else 0.0,
    }
    return MonteCarloResult(
        summaries=summaries, trials=trials, manifest=manifest.to_dict(), timing=timing
    )


def _estimator_comparison_trial(
    setups: List[Tuple[str, str, Dict[str, object]]],
    workload: WorkloadFunction,
    rng: np.random.Generator,
) -> Dict[str, float]:
    """One paired trial: draw a scene, run every estimator on it.

    Module-level so the process backend can pickle it (the workload must
    itself be module-level for that backend). The error is the Euclidean
    distance over the axes the method estimates, so 2D methods compare
    fairly against a 3D truth.
    """
    request, truth = workload(rng)
    truth = np.asarray(truth, dtype=float)
    outcomes: Dict[str, float] = {}
    for label, name, payload in setups:
        report = pipeline.estimate(name, request, payload)
        dim = min(report.position.size, truth.size)
        outcomes[label] = float(np.linalg.norm(report.position[:dim] - truth[:dim]))
    return outcomes


def run_estimator_comparison(
    estimators: Union[Mapping[str, EstimatorEntry], Sequence[str]],
    workload: WorkloadFunction,
    trials: int,
    seed: int = 0,
    **monte_carlo_kwargs: object,
) -> MonteCarloResult:
    """Compare registered estimators on identical randomized scenes.

    Every trial draws one scene through ``workload`` and replays the same
    :class:`repro.pipeline.EstimationRequest` through each estimator, so
    the per-method error metrics are *paired* and feed straight into
    :func:`compare_methods`. Methods are resolved through the
    :mod:`repro.pipeline` registry by name — this harness never imports a
    solver directly.

    Args:
        estimators: either a sequence of registry names (each name is its
            own metric label), or a mapping of label -> name or
            ``(name, config_dict)``. Configs are validated up front via
            :func:`repro.pipeline.resolve_config`, so a typo'd key fails
            before any trial runs.
        workload: draws one scene per trial from the trial's generator and
            returns ``(request, truth_position)``. Must be module-level
            for the process backend.
        trials: number of paired repetitions.
        seed: base seed (trial ``k`` uses ``default_rng(seed + k)``).
        **monte_carlo_kwargs: forwarded to :func:`run_monte_carlo`
            (``executor=``, ``jobs=``, ``confidence=``, ...).

    Raises:
        KeyError: for an unknown estimator name.
        ValueError: for invalid config keys, an empty estimator set, or
            the :func:`run_monte_carlo` argument errors.
    """
    if isinstance(estimators, Mapping):
        entries = list(estimators.items())
    else:
        entries = [(name, name) for name in estimators]
    if not entries:
        raise ValueError("estimators must name at least one registered method")
    setups: List[Tuple[str, str, Dict[str, object]]] = []
    for label, entry in entries:
        name, config = entry if isinstance(entry, tuple) else (entry, None)
        setups.append((label, name, pipeline.resolve_config(name, config).to_dict()))
    trial = functools.partial(_estimator_comparison_trial, setups, workload)
    return run_monte_carlo(trial, trials, seed=seed, **monte_carlo_kwargs)


def compare_methods(
    result: MonteCarloResult, method_a: str, method_b: str
) -> float:
    """Fraction of paired trials where ``method_a`` beat ``method_b``.

    Both metrics must have the same sample count (paired trials).

    Raises:
        KeyError: for unknown metric names.
        ValueError: for unpaired sample counts.
    """
    a = result[method_a].samples
    b = result[method_b].samples
    if a.size != b.size:
        raise ValueError(
            f"unpaired samples: {method_a} has {a.size}, {method_b} has {b.size}"
        )
    return float(np.mean(a < b))
