"""Markdown reporting for experiment results.

Turns one or many :class:`~repro.experiments.metrics.ExperimentResult`
objects into a publication-ready markdown section — the machinery behind
keeping EXPERIMENTS.md honest: regenerate, render, diff.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.metrics import ExperimentResult


def _format_cell(value: object, float_format: str = "{:.4g}") -> str:
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def result_to_markdown(result: ExperimentResult, heading_level: int = 3) -> str:
    """Render one result as a markdown section with a table.

    Args:
        result: the experiment result.
        heading_level: markdown heading depth for the section title.

    Raises:
        ValueError: for an empty result or bad heading level.
    """
    if not result.rows:
        raise ValueError(f"result {result.figure_id} has no rows to render")
    if not 1 <= heading_level <= 6:
        raise ValueError(f"heading level must be 1..6, got {heading_level}")
    lines = [f"{'#' * heading_level} {result.figure_id} — {result.title}", ""]
    header = "| " + " | ".join(result.columns) + " |"
    separator = "|" + "|".join("---" for _ in result.columns) + "|"
    lines += [header, separator]
    for row in result.rows:
        cells = [_format_cell(row.get(column, "")) for column in result.columns]
        lines.append("| " + " | ".join(cells) + " |")
    if result.paper_expectation:
        lines += ["", f"**Paper:** {result.paper_expectation}"]
    if result.notes:
        lines += ["", f"**Notes:** {result.notes}"]
    return "\n".join(lines)


def results_to_markdown(
    results: Sequence[ExperimentResult],
    title: str = "Regenerated results",
) -> str:
    """Render many results as one markdown document.

    Raises:
        ValueError: when no results are given.
    """
    if not results:
        raise ValueError("no results to render")
    sections = [f"# {title}", ""]
    for result in results:
        sections.append(result_to_markdown(result))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def write_report(
    results: Iterable[ExperimentResult],
    path: "str",
    title: str = "Regenerated results",
) -> None:
    """Write :func:`results_to_markdown` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(results_to_markdown(list(results), title=title))
