"""Registry mapping figure ids to their runners.

``run_figure("fig13a")`` regenerates one figure; ``FIGURE_RUNNERS`` lists
all of them for the CLI and the benchmark suite.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.figures_case import (
    run_fig19_20_multi_antenna,
    run_fig21_rotating_tag,
)
from repro.experiments.figures_eval import (
    run_fig13a_overall_accuracy,
    run_fig13b_timing,
    run_fig14a_height_depth_3d,
    run_fig14b_depth_2d,
    run_fig15_weight,
    run_fig16_17_scanning_range,
    run_fig18_scanning_interval,
)
from repro.experiments.figures_model import (
    run_fig06_directions,
    run_fig09_lower_dimension,
)
from repro.experiments.figures_preliminary import (
    run_fig02_phase_center,
    run_fig03_phase_offset,
    run_fig04_hologram,
)
from repro.experiments.figures_extensions import (
    run_ext_multiref,
    run_ext_online,
    run_ext_wander,
)
from repro.experiments.metrics import ExperimentResult
from repro.obs import get_registry, metrics_enabled, span

FigureRunner = Callable[..., ExperimentResult]

#: Studies of this library's extensions (no paper counterpart).
EXTENSION_RUNNERS: Dict[str, FigureRunner] = {
    "ext_online": run_ext_online,
    "ext_multiref": run_ext_multiref,
    "ext_wander": run_ext_wander,
}

#: The paper's evaluation figures.
PAPER_RUNNERS: Dict[str, FigureRunner] = {
    "fig02": run_fig02_phase_center,
    "fig03": run_fig03_phase_offset,
    "fig04": run_fig04_hologram,
    "fig06": run_fig06_directions,
    "fig09": run_fig09_lower_dimension,
    "fig13a": run_fig13a_overall_accuracy,
    "fig13b": run_fig13b_timing,
    "fig14a": run_fig14a_height_depth_3d,
    "fig14b": run_fig14b_depth_2d,
    "fig15": run_fig15_weight,
    "fig16_17": run_fig16_17_scanning_range,
    "fig18": run_fig18_scanning_interval,
    "fig19_20": run_fig19_20_multi_antenna,
    "fig21": run_fig21_rotating_tag,
}

#: Everything runnable by id (paper figures + extension studies).
FIGURE_RUNNERS: Dict[str, FigureRunner] = {**PAPER_RUNNERS, **EXTENSION_RUNNERS}


def run_figure(figure_id: str, seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Regenerate one figure by id.

    Raises:
        KeyError: for an unknown figure id (message lists the valid ones).
    """
    if figure_id not in FIGURE_RUNNERS:
        raise KeyError(
            f"unknown figure {figure_id!r}; valid ids: {sorted(FIGURE_RUNNERS)}"
        )
    with span("figure", figure=figure_id, seed=seed, fast=fast):
        result = FIGURE_RUNNERS[figure_id](seed=seed, fast=fast)
    if metrics_enabled():
        get_registry().counter("figures.runs_total", figure=figure_id).inc()
    return result
