"""Figures 13-18: the paper's main evaluation on the conveyor testbed.

All runners share the Sec. V-A geometry (track along x, antenna behind it
at depth 0.6-1.6 m) and the hardware-faithful channel: SNR-scaled phase
noise (off-beam reads are noisier) plus room multipath. ``fast=True``
shrinks repetitions, read rates and hologram grids for CI-speed runs
without changing the experiment structure.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro import pipeline
from repro.core.calibration import calibrate_antenna
from repro.datasets.synthetic import ScanData, simulate_scan
from repro.experiments.metrics import ExperimentResult, axis_errors, distance_error
from repro.experiments.scenarios import make_room_reflectors, standard_antenna
from repro.rf.antenna import Antenna
from repro.rf.noise import BurstyPhaseNoise, SnrScaledPhaseNoise
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan, TwoLineScan


def _read_rate(fast: bool) -> float:
    return 30.0 if fast else 120.0


def _subsample(scan: ScanData, target: int) -> tuple[np.ndarray, np.ndarray]:
    """Thin a scan's non-transit reads to ~``target`` for hologram input."""
    positions = scan.positions[~scan.exclude_mask]
    phases = scan.phases[~scan.exclude_mask]
    stride = max(positions.shape[0] // target, 1)
    return positions[::stride], phases[::stride]


def _calibration_scan(
    antenna: Antenna, rng: np.random.Generator, fast: bool
) -> ScanData:
    """The Fig. 11 three-line calibration scan in front of ``antenna``."""
    trajectory = ThreeLineScan(
        x_start=-0.55,
        x_end=0.55,
        y_offset=0.2,
        z_offset=0.2,
        origin=(antenna.physical_center[0], 0.0, 0.0),
    )
    noise = SnrScaledPhaseNoise(
        base_std_rad=0.08, reference_distance_m=antenna.physical_center[1]
    )
    return simulate_scan(
        trajectory, antenna, rng=rng, noise=noise, read_rate_hz=_read_rate(fast)
    )


def _calibrate(
    antenna: Antenna, rng: np.random.Generator, fast: bool
) -> np.ndarray:
    """Run the full adaptive calibration; return the estimated phase center."""
    scan = _calibration_scan(antenna, rng, fast)
    grid = (
        pipeline.ParameterGrid(ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.3))
        if fast
        else pipeline.ParameterGrid(
            ranges_m=(0.7, 0.8, 0.9, 1.0), intervals_m=(0.15, 0.2, 0.25, 0.3)
        )
    )
    calibration, _ = calibrate_antenna(
        scan.positions,
        scan.phases,
        antenna.physical_center_array,
        antenna_name=antenna.name,
        segment_ids=scan.segment_ids,
        exclude_mask=scan.exclude_mask,
        grid=grid,
    )
    return calibration.estimated_center


def run_fig13a_overall_accuracy(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 13(a): accuracy with/without calibration, LION vs DAH, 2D/3D.

    The tag-localization error equals the distance between the *assumed*
    antenna position (physical center when uncalibrated, calibrated
    estimate otherwise) and the position the method actually infers from
    the phases — so calibration removes the hidden 2-3 cm displacement
    from the error budget.
    """
    rng = np.random.default_rng(seed)
    repetitions = 3 if fast else 10
    hologram = pipeline.create_estimator(
        "hologram", {"grid_size_m": 0.01 if fast else 0.002, "augmentation_rounds": 1}
    )
    hologram3d = pipeline.create_estimator(
        "hologram", {"grid_size_m": 0.02 if fast else 0.005, "augmentation_rounds": 1}
    )
    errors: Dict[str, List[float]] = {
        key: []
        for key in (
            "LION 2D-", "LION 2D+", "LION 3D-", "LION 3D+",
            "DAH 2D-", "DAH 2D+", "DAH 3D-", "DAH 3D+",
        )
    }

    for _ in range(repetitions):
        antenna = standard_antenna(rng, depth_m=0.8, height_m=0.1)
        calibrated_center = _calibrate(antenna, rng, fast)
        physical = antenna.physical_center_array
        noise = SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.8)

        # --- 2D: single-line conveyor scan, answer in the track plane. ---
        scan2 = simulate_scan(
            LinearTrajectory((-0.6, 0.0, 0.1), (0.6, 0.0, 0.1)),
            antenna,
            rng=rng,
            noise=noise,
            read_rate_hz=_read_rate(fast),
        )
        lion2 = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest.from_scan(scan2),
            {"dim": 2, "interval_m": 0.25},
        )
        errors["LION 2D-"].append(distance_error(lion2.position, physical[:2]))
        errors["LION 2D+"].append(distance_error(lion2.position, calibrated_center[:2]))

        sub_positions, sub_phases = _subsample(scan2, 30)
        truth2 = antenna.phase_center[:2]
        dah2 = hologram.estimate(
            pipeline.EstimationRequest(
                positions=sub_positions[:, :2],
                phases_rad=sub_phases,
                bounds=(
                    (truth2[0] - 0.12, truth2[0] + 0.12),
                    (truth2[1] - 0.12, truth2[1] + 0.12),
                ),
            )
        )
        errors["DAH 2D-"].append(distance_error(dah2.position, physical[:2]))
        errors["DAH 2D+"].append(distance_error(dah2.position, calibrated_center[:2]))

        # --- 3D: two-line scan, z recovered from d_r. ---
        scan3 = simulate_scan(
            TwoLineScan(x_start=-0.6, x_end=0.6, y_offset=0.2),
            antenna,
            rng=rng,
            noise=noise,
            read_rate_hz=_read_rate(fast),
        )
        lion3 = pipeline.estimate(
            "lion",
            pipeline.EstimationRequest.from_scan(scan3),
            {"dim": 3, "interval_m": 0.25},
        )
        errors["LION 3D-"].append(distance_error(lion3.position, physical))
        errors["LION 3D+"].append(distance_error(lion3.position, calibrated_center))

        sub_positions3, sub_phases3 = _subsample(scan3, 24)
        truth3 = antenna.phase_center
        dah3 = hologram3d.estimate(
            pipeline.EstimationRequest(
                positions=sub_positions3,
                phases_rad=sub_phases3,
                bounds=tuple((t - 0.1, t + 0.1) for t in truth3),
            )
        )
        errors["DAH 3D-"].append(distance_error(dah3.position, physical))
        errors["DAH 3D+"].append(distance_error(dah3.position, calibrated_center))

    result = ExperimentResult(
        figure_id="fig13a",
        title="Overall accuracy: calibration (+/-) x method x dimension",
        columns=["case", "mean_error_cm"],
        paper_expectation=(
            "calibration improves LION accuracy ~6x (2D) and ~2.1x (3D); "
            "LION slightly better than DAH (0.48 vs 0.69 cm 2D; 2.33 vs "
            "2.61 cm 3D, calibrated)"
        ),
    )
    for case, values in errors.items():
        result.add_row(case=case, mean_error_cm=float(np.mean(values)) * 100.0)
    return result


def run_fig13b_timing(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 13(b): computation time, LION vs DAH, 2D/3D.

    DAH searches (20 cm)^2 / (20 cm)^3 at 1 mm (paper). Absolute times are
    machine-dependent; the reproduced shape is LION << DAH with the gap
    exploding in 3D.
    """
    rng = np.random.default_rng(seed)
    antenna = standard_antenna(rng, depth_m=0.8, height_m=0.1)
    noise = SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.8)
    grid2 = 0.002 if fast else 0.001
    grid3 = 0.004 if fast else 0.001

    scan2 = simulate_scan(
        LinearTrajectory((-0.6, 0.0, 0.1), (0.6, 0.0, 0.1)),
        antenna,
        rng=rng,
        noise=noise,
        read_rate_hz=_read_rate(fast),
    )
    scan3 = simulate_scan(
        TwoLineScan(x_start=-0.6, x_end=0.6, y_offset=0.2),
        antenna,
        rng=rng,
        noise=noise,
        read_rate_hz=_read_rate(fast),
    )
    truth = antenna.phase_center

    timings: Dict[str, float] = {}

    lion2 = pipeline.create_estimator("lion", {"dim": 2, "interval_m": 0.25})
    request2 = pipeline.EstimationRequest.from_scan(scan2)
    start = time.perf_counter()
    lion2.estimate(request2)
    timings["LION 2D"] = time.perf_counter() - start

    lion3 = pipeline.create_estimator("lion", {"dim": 3, "interval_m": 0.25})
    request3 = pipeline.EstimationRequest.from_scan(scan3)
    start = time.perf_counter()
    lion3.estimate(request3)
    timings["LION 3D"] = time.perf_counter() - start

    sub2_positions, sub2_phases = _subsample(scan2, 30)
    dah2 = pipeline.create_estimator(
        "hologram", {"grid_size_m": grid2, "augmentation_rounds": 1}
    )
    dah2_request = pipeline.EstimationRequest(
        positions=sub2_positions[:, :2],
        phases_rad=sub2_phases,
        bounds=((truth[0] - 0.1, truth[0] + 0.1), (truth[1] - 0.1, truth[1] + 0.1)),
    )
    start = time.perf_counter()
    dah2.estimate(dah2_request)
    timings["DAH 2D"] = time.perf_counter() - start

    sub3_positions, sub3_phases = _subsample(scan3, 20)
    dah3 = pipeline.create_estimator(
        "hologram", {"grid_size_m": grid3, "augmentation_rounds": 1}
    )
    dah3_request = pipeline.EstimationRequest(
        positions=sub3_positions,
        phases_rad=sub3_phases,
        bounds=tuple((t - 0.1, t + 0.1) for t in truth),
    )
    start = time.perf_counter()
    dah3.estimate(dah3_request)
    timings["DAH 3D"] = time.perf_counter() - start

    result = ExperimentResult(
        figure_id="fig13b",
        title="Computation time per localization",
        columns=["method", "seconds"],
        paper_expectation=(
            "LION: 0.02 s (2D) and 1.8 s (3D); DAH far slower, especially "
            "in 3D where the grid count explodes"
        ),
        notes=f"DAH grids: {grid2 * 1000:.0f} mm (2D), {grid3 * 1000:.0f} mm (3D) over (20 cm)^dim",
    )
    for method, seconds in timings.items():
        result.add_row(method=method, seconds=float(seconds))
    return result


def run_fig14a_height_depth_3d(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 14(a): 3D error vs antenna position P1-P6.

    Two x-lines at y = 0 / -0.2 in the z = 0 plane; antenna at depth
    0.6/0.8/1.0 m and height 0/0.2 m. Expected: sub-1.5 cm errors up to
    0.8 m depth, then sharp growth, worst along y and z (the scan's 20 cm
    height diversity stops resolving them).
    """
    rng = np.random.default_rng(seed)
    repetitions = 3 if fast else 10
    scan_trajectory = TwoLineScan(x_start=-0.6, x_end=0.6, y_offset=0.2)
    positions_spec = [
        ("P1", 0.6, 0.0), ("P2", 0.6, 0.2),
        ("P3", 0.8, 0.0), ("P4", 0.8, 0.2),
        ("P5", 1.0, 0.0), ("P6", 1.0, 0.2),
    ]
    result = ExperimentResult(
        figure_id="fig14a",
        title="3D localization error vs antenna position (two-line scan)",
        columns=["position", "depth_m", "height_m", "err_x_cm", "err_y_cm", "err_z_cm", "err_total_cm"],
        paper_expectation=(
            "depth <= 0.8 m: all-axis errors < 1.5 cm; larger depth degrades "
            "sharply, especially along y and z"
        ),
    )
    for label, depth, height in positions_spec:
        per_axis, totals = [], []
        for _ in range(repetitions):
            antenna = Antenna(
                physical_center=(0.0, depth, height),
                boresight=(0.0, -1.0, 0.0),
                name=label,
            )
            noise = SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=depth)
            scan = simulate_scan(
                scan_trajectory, antenna, rng=rng, noise=noise, read_rate_hz=_read_rate(fast)
            )
            report = pipeline.estimate(
                "lion",
                pipeline.EstimationRequest.from_scan(scan),
                {"dim": 3, "interval_m": 0.25},
            )
            truth = antenna.phase_center
            per_axis.append(axis_errors(report.position, truth))
            totals.append(distance_error(report.position, truth))
        mean_axis = np.mean(np.vstack(per_axis), axis=0) * 100.0
        result.add_row(
            position=label,
            depth_m=depth,
            height_m=height,
            err_x_cm=float(mean_axis[0]),
            err_y_cm=float(mean_axis[1]),
            err_z_cm=float(mean_axis[2]),
            err_total_cm=float(np.mean(totals)) * 100.0,
        )
    return result


def run_fig14b_depth_2d(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 14(b): 2D error vs depth 0.6-1.6 m, LION (adaptive) vs DAH.

    Multipath's relative power grows with depth as line-of-sight power
    falls. DAH consumes every read and degrades sharply past ~1.4 m;
    LION's weighting plus adaptive range/interval selection holds.
    """
    rng = np.random.default_rng(seed)
    repetitions = 2 if fast else 8
    depths = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6)
    adaptive_config = {
        "dim": 2,
        "ranges_m": (1.2, 2.0) if fast else (0.8, 1.2, 1.6, 2.0),
        "intervals_m": (0.2, 0.3),
    }
    hologram = pipeline.create_estimator(
        "hologram", {"grid_size_m": 0.01 if fast else 0.002, "augmentation_rounds": 1}
    )
    result = ExperimentResult(
        figure_id="fig14b",
        title="2D tracking error vs depth (multipath grows with depth)",
        columns=["depth_m", "lion_error_cm", "dah_error_cm"],
        paper_expectation=(
            "LION ~0.45 cm at all depths; DAH ~0.55 cm up to 1.2 m then "
            ">2.5 cm beyond 1.4 m"
        ),
    )
    for depth in depths:
        lion_errors, dah_errors = [], []
        for _ in range(repetitions):
            antenna = Antenna(
                physical_center=(0.0, depth, 0.0), boresight=(0.0, -1.0, 0.0)
            )
            reflectors = make_room_reflectors(antenna, strength=0.5)
            noise = BurstyPhaseNoise(
                base=SnrScaledPhaseNoise(base_std_rad=0.06, reference_distance_m=0.8),
                burst_probability=0.03,
                burst_magnitude_rad=1.2,
            )
            scan = simulate_scan(
                LinearTrajectory((-1.25, 0.0, 0.0), (1.25, 0.0, 0.0)),
                antenna,
                rng=rng,
                noise=noise,
                reflectors=reflectors,
                read_rate_hz=_read_rate(fast),
            )
            truth = antenna.phase_center[:2]

            adaptive = pipeline.estimate(
                "lion-adaptive",
                pipeline.EstimationRequest(
                    positions=scan.positions, phases_rad=scan.phases
                ),
                adaptive_config,
            )
            lion_errors.append(distance_error(adaptive.position, truth))

            sub_positions, sub_phases = _subsample(scan, 50)
            dah = hologram.estimate(
                pipeline.EstimationRequest(
                    positions=sub_positions[:, :2],
                    phases_rad=sub_phases,
                    bounds=(
                        (truth[0] - 0.25, truth[0] + 0.25),
                        (truth[1] - 0.25, truth[1] + 0.25),
                    ),
                )
            )
            dah_errors.append(distance_error(dah.position, truth))
        result.add_row(
            depth_m=depth,
            lion_error_cm=float(np.mean(lion_errors)) * 100.0,
            dah_error_cm=float(np.mean(dah_errors)) * 100.0,
        )
    return result


def run_fig15_weight(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 15: WLS vs LS on identical scans (30 random tag positions).

    Ambient interference corrupts a small fraction of reads with large
    phase errors (modeled as 5% bursts of up to 1.5 rad on top of the
    SNR-scaled noise); the Gaussian residual weights suppress the
    equations those reads contaminate. Smoothing is disabled here to
    isolate the solver comparison — a mean filter would dilute the bursts
    before either solver sees them. Expected: WLS roughly halves the LS
    error (paper: 0.43 vs 0.92 cm).
    """
    rng = np.random.default_rng(seed)
    repetitions = 8 if fast else 30
    wls_errors, ls_errors = [], []
    for _ in range(repetitions):
        x_offset = float(rng.uniform(-0.3, 0.3))
        antenna = Antenna(
            physical_center=(x_offset, 0.8, 0.0), boresight=(0.0, -1.0, 0.0)
        )
        noise = BurstyPhaseNoise(
            base=SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8),
            burst_probability=0.05,
            burst_magnitude_rad=1.5,
        )
        scan = simulate_scan(
            LinearTrajectory((x_offset - 0.5, 0.0, 0.0), (x_offset + 0.5, 0.0, 0.0)),
            antenna,
            rng=rng,
            noise=noise,
            read_rate_hz=_read_rate(fast),
        )
        truth = antenna.phase_center[:2]
        for method, store in (("wls", wls_errors), ("ls", ls_errors)):
            report = pipeline.estimate(
                "lion",
                pipeline.EstimationRequest(
                    positions=scan.positions, phases_rad=scan.phases
                ),
                {
                    "dim": 2,
                    "method": method,
                    "interval_m": 0.25,
                    "smoothing_window": 1,
                },
            )
            store.append(distance_error(report.position, truth))

    result = ExperimentResult(
        figure_id="fig15",
        title="Weighted vs ordinary least squares",
        columns=["method", "mean_error_cm", "median_error_cm", "p90_error_cm"],
        paper_expectation="WLS 0.43 cm vs LS 0.92 cm on average",
    )
    for method, store in (("WLS", wls_errors), ("LS", ls_errors)):
        arr = np.asarray(store)
        result.add_row(
            method=method,
            mean_error_cm=float(np.mean(arr)) * 100.0,
            median_error_cm=float(np.median(arr)) * 100.0,
            p90_error_cm=float(np.percentile(arr, 90)) * 100.0,
        )
    return result


def _range_interval_sweep(
    seed: int,
    fast: bool,
    ranges_m: Sequence[float],
    intervals_m: Sequence[float],
) -> List[Dict[str, float]]:
    """Shared sweep used by the Fig. 16/17 and Fig. 18 runners.

    The sweep runs at a reduced read rate (30 Hz) and elevated base noise
    (0.3 rad) so that the small-range conditioning penalty is visible
    above the smoothing noise floor — at 120 Hz with 0.06 rad noise the
    estimator is so over-determined that every range wins equally, hiding
    the trade-off the paper studies.
    """
    rng = np.random.default_rng(seed)
    repetitions = 4 if fast else 12
    rows: List[Dict[str, float]] = []
    for range_m in ranges_m:
        for interval_m in intervals_m:
            errors, residuals, dirtiness = [], [], []
            for _ in range(repetitions):
                antenna = Antenna(
                    physical_center=(0.0, 0.8, 0.0), boresight=(0.0, -1.0, 0.0)
                )
                reflectors = make_room_reflectors(antenna, strength=0.3)
                noise = BurstyPhaseNoise(
                    base=SnrScaledPhaseNoise(
                        base_std_rad=0.3, reference_distance_m=0.8, max_std_rad=1.4
                    ),
                    burst_probability=0.03,
                    burst_magnitude_rad=1.2,
                )
                scan = simulate_scan(
                    LinearTrajectory((-1.25, 0.0, 0.0), (1.25, 0.0, 0.0)),
                    antenna,
                    rng=rng,
                    noise=noise,
                    reflectors=reflectors,
                    read_rate_hz=30.0,
                )
                outside = np.abs(scan.positions[:, 0]) > range_m / 2.0
                report = pipeline.estimate(
                    "lion",
                    pipeline.EstimationRequest(
                        positions=scan.positions,
                        phases_rad=scan.phases,
                        exclude_mask=outside,
                    ),
                    {"dim": 2, "interval_m": interval_m},
                )
                errors.append(
                    distance_error(report.position, antenna.phase_center[:2])
                )
                residuals.append(report.diagnostics["mean_residual"])
                dirtiness.append(report.diagnostics["mean_abs_residual"])
            rows.append(
                {
                    "range_m": float(range_m),
                    "interval_m": float(interval_m),
                    "mean_error_cm": float(np.mean(errors)) * 100.0,
                    "mean_residual": float(np.mean(residuals)),
                    "mean_abs_residual_mm": float(np.mean(dirtiness)) * 1000.0,
                }
            )
    return rows


def run_fig16_17_scanning_range(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 16+17: residual and error vs scanning range (interval 25 cm).

    Expected: a sweet spot around 80 cm — smaller ranges lack geometric
    diversity (plane-wave regime), larger ranges pull in noisy off-beam
    reads — with the |mean residual| minimum aligned to the error minimum.
    """
    ranges = (0.6, 0.7, 0.8, 0.9, 1.0, 1.1)
    rows = _range_interval_sweep(seed, fast, ranges, (0.25,))
    result = ExperimentResult(
        figure_id="fig16_17",
        title="Distance error and WLS mean residual vs scanning range",
        columns=["range_m", "mean_error_cm", "mean_residual", "mean_abs_residual_mm"],
        paper_expectation=(
            "range 80 cm has the residual closest to zero and the minimum "
            "distance error; error grows on both sides"
        ),
    )
    for row in rows:
        result.add_row(
            range_m=row["range_m"],
            mean_error_cm=row["mean_error_cm"],
            mean_residual=row["mean_residual"],
            mean_abs_residual_mm=row["mean_abs_residual_mm"],
        )
    return result


def run_fig18_scanning_interval(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 18: error vs scanning interval (range 80 cm).

    Expected: error drops markedly once the interval reaches ~20 cm (a
    larger interval means a larger phase difference, so noise matters
    relatively less), and the 20 cm residual sits nearest zero.
    """
    intervals = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35)
    rows = _range_interval_sweep(seed, fast, (0.8,), intervals)
    result = ExperimentResult(
        figure_id="fig18",
        title="Distance error and WLS mean residual vs scanning interval",
        columns=["interval_m", "mean_error_cm", "mean_residual", "mean_abs_residual_mm"],
        paper_expectation=(
            "error decreases significantly once the interval reaches 20 cm; "
            "the 20 cm residual is closest to zero"
        ),
    )
    for row in rows:
        result.add_row(
            interval_m=row["interval_m"],
            mean_error_cm=row["mean_error_cm"],
            mean_residual=row["mean_residual"],
            mean_abs_residual_mm=row["mean_abs_residual_mm"],
        )
    return result
