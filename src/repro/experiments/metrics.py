"""Metrics and the experiment result container.

The paper's headline metric is the *distance error* — the Euclidean
distance between truth and estimate — supplemented by per-axis errors
(Fig. 6, 14(a), 21) and CDFs (Fig. 15). ``ExperimentResult`` is the
uniform return type of every figure runner: a titled table of rows plus
free-text notes recording the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


def distance_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Euclidean distance between estimate and ground truth, meters.

    Raises:
        ValueError: on shape mismatch.
    """
    a = np.asarray(estimate, dtype=float)
    b = np.asarray(truth, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def axis_errors(estimate: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Absolute per-axis errors, meters."""
    a = np.asarray(estimate, dtype=float)
    b = np.asarray(truth, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return np.abs(a - b)


def summarize_errors(errors_m: Sequence[float]) -> Dict[str, float]:
    """Mean / median / std / p90 / max of a set of distance errors."""
    arr = np.asarray(list(errors_m), dtype=float)
    if arr.size == 0:
        raise ValueError("no errors to summarize")
    return {
        "mean": float(np.mean(arr)),
        "median": float(np.median(arr)),
        "std": float(np.std(arr)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(np.max(arr)),
    }


def error_cdf(errors_m: Sequence[float], levels: Sequence[float] = (0.5, 0.9)) -> Dict[float, float]:
    """Error value at each CDF level (e.g. median and 90th percentile)."""
    arr = np.asarray(list(errors_m), dtype=float)
    if arr.size == 0:
        raise ValueError("no errors to summarize")
    return {level: float(np.percentile(arr, level * 100.0)) for level in levels}


@dataclass
class ExperimentResult:
    """One regenerated figure.

    Attributes:
        figure_id: e.g. ``"fig13a"``.
        title: short description of what the figure shows.
        columns: ordered column names of ``rows``.
        rows: the regenerated series, one dict per table row.
        paper_expectation: the paper's reported numbers/shape, for
            EXPERIMENTS.md and quick eyeballing.
        notes: anything worth recording about the run (substitutions,
            parameter deviations).
    """

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    paper_expectation: str = ""
    notes: str = ""

    def add_row(self, **values: object) -> None:
        """Append a row; unknown columns are rejected to keep tables clean.

        Raises:
            KeyError: when a value does not match a declared column.
        """
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has undeclared columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation of the result."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "paper_expectation": self.paper_expectation,
            "notes": self.notes,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            KeyError: when required keys are missing.
        """
        result = cls(
            figure_id=str(payload["figure_id"]),
            title=str(payload["title"]),
            columns=list(payload["columns"]),  # type: ignore[arg-type]
            paper_expectation=str(payload.get("paper_expectation", "")),
            notes=str(payload.get("notes", "")),
        )
        for row in payload["rows"]:  # type: ignore[union-attr]
            result.add_row(**row)  # type: ignore[arg-type]
        return result

    def format_table(self, float_format: str = "{:.4g}") -> str:
        """Render the result as an aligned text table."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = [self.columns]
        body = [[fmt(row.get(c, "")) for c in self.columns] for row in self.rows]
        widths = [
            max(len(line[i]) for line in header + body)
            for i in range(len(self.columns))
        ]
        lines = [
            f"== {self.figure_id}: {self.title} ==",
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += ["  ".join(v.ljust(w) for v, w in zip(line, widths)) for line in body]
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)
