"""Figures 19-21: the case studies.

* Fig. 19+20 — three antennas locate a static tag via a differential
  hologram; calibration levels (none / phase center / center + offset)
  progressively cut the error (paper: 8.49 -> 5.76 -> 4.68 cm).
* Fig. 21 — antenna localization from a tag rotating on a turntable:
  errors align with the center-to-antenna direction and shrink with the
  rotation radius.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro import pipeline
from repro.constants import TWO_PI
from repro.core.calibration import (
    AntennaCalibration,
    calibrate_antenna,
    relative_phase_offsets,
)
from repro.datasets.synthetic import simulate_scan, simulate_static_reads
from repro.experiments.metrics import ExperimentResult, axis_errors, distance_error
from repro.geometry.transforms import unit
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise, SnrScaledPhaseNoise
from repro.rf.tag import Tag
from repro.signalproc.stats import circular_mean
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.multiline import ThreeLineScan


def run_fig19_20_multi_antenna(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 19+20: static-tag localization with three antennas.

    A1-A3 sit in a line (30 cm apart) with hidden center displacements and
    phase offsets; a shared three-line scan (depth 0.7 m, y_o = z_o =
    20 cm) calibrates all three; then a differential hologram locates the
    tag at (-10 cm, 80 cm) under three calibration levels.
    """
    repetitions = 2 if fast else 6
    grid_size = 0.01 if fast else 0.004
    read_rate = 30.0 if fast else 120.0
    cal_grid = (
        pipeline.ParameterGrid(ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.3))
        if fast
        else pipeline.ParameterGrid(
            ranges_m=(0.7, 0.8, 0.9, 1.0), intervals_m=(0.15, 0.2, 0.25, 0.3)
        )
    )
    tag_truth = np.array([-0.1, 0.8])
    level_errors: Dict[str, List[float]] = {"none": [], "center": [], "full": []}
    displacement_rows: List[Dict[str, object]] = []

    # Ground-truth offsets follow the paper's qualitative pattern
    # (Sec. V-F1): A1 and A3 are standalone units with similar rotations
    # while A2, mounted on the metallic integrated machine, deviates. The
    # deviation magnitude is set to 0.2 rad: with the paper's full 1.24 rad
    # reported delta, the uncorrected differential hologram's peak leaves
    # the main lobe entirely (errors saturate at the search bound), whereas
    # a moderate deviation reproduces the *graded* degradation the paper
    # reports across calibration levels.
    base_offsets = (3.98, 3.78, 4.07)
    for repetition in range(repetitions):
        rng = np.random.default_rng(seed + repetition)
        antennas = []
        for index, x in enumerate((-0.3, 0.0, 0.3)):
            direction = unit(rng.normal(size=3), name="displacement direction")
            antennas.append(
                Antenna(
                    physical_center=(x, 0.0, 0.0),
                    center_displacement=tuple(rng.uniform(0.02, 0.03) * direction),
                    phase_offset_rad=float(
                        np.mod(base_offsets[index] + rng.normal(0.0, 0.05), TWO_PI)
                    ),
                    boresight=(0.0, 1.0, 0.0),
                    name=f"A{index + 1}",
                )
            )
        tag = Tag.random(rng, epc="cal-tag")

        # One physical scan; each antenna observes the same tag movement.
        trajectory = ThreeLineScan(
            x_start=-0.55, x_end=0.55, y_offset=0.2, z_offset=0.2, origin=(0.0, 0.7, 0.0)
        )
        calibrations: List[AntennaCalibration] = []
        for antenna in antennas:
            scan = simulate_scan(
                trajectory,
                antenna,
                tag=tag,
                rng=rng,
                noise=SnrScaledPhaseNoise(base_std_rad=0.08, reference_distance_m=0.7),
                read_rate_hz=read_rate,
            )
            calibration, _ = calibrate_antenna(
                scan.positions,
                scan.phases,
                antenna.physical_center_array,
                antenna_name=antenna.name,
                segment_ids=scan.segment_ids,
                exclude_mask=scan.exclude_mask,
                grid=cal_grid,
            )
            calibrations.append(calibration)
            if repetition == 0:
                displacement_rows.append(
                    {
                        "case": f"{antenna.name} displacement est/true (cm)",
                        "error_cm": float(
                            np.linalg.norm(
                                calibration.center_displacement
                                - np.asarray(antenna.center_displacement)
                            )
                        )
                        * 100.0,
                    }
                )
        offsets = relative_phase_offsets(calibrations)

        # Static tag reads per antenna (Fig. 20 setup).
        measured = []
        for antenna in antennas:
            records = simulate_static_reads(
                antenna,
                tag,
                (tag_truth[0], tag_truth[1], 0.0),
                30 if fast else 100,
                rng,
                noise=GaussianPhaseNoise(0.05),
            )
            measured.append(circular_mean(np.array([r.phase_rad for r in records])))
        measured = np.array(measured)

        physical = np.array([a.physical_center_array[:2] for a in antennas])
        estimated = np.array([c.estimated_center[:2] for c in calibrations])
        corrections = np.array([offsets[a.name] for a in antennas])
        # Search the vicinity of the nominal (manual) tag placement; a
        # wide-open search lets the uncorrected landscape's wrap-ambiguous
        # intersections win and errors saturate at the bound.
        bounds = [
            (tag_truth[0] - 0.18, tag_truth[0] + 0.18),
            (tag_truth[1] - 0.18, tag_truth[1] + 0.18),
        ]

        for level, centers, offsets_corr in (
            ("none", physical, np.zeros(3)),
            ("center", estimated, np.zeros(3)),
            ("full", estimated, corrections),
        ):
            outcome = pipeline.estimate(
                "lion-multiantenna",
                pipeline.EstimationRequest(
                    positions=centers,
                    phases_rad=measured,
                    bounds=tuple(bounds),
                    offset_corrections_rad=offsets_corr,
                ),
                {"grid_size_m": grid_size},
            )
            level_errors[level].append(distance_error(outcome.position, tag_truth))

    result = ExperimentResult(
        figure_id="fig19_20",
        title="Multi-antenna static-tag localization vs calibration level",
        columns=["case", "error_cm"],
        paper_expectation=(
            "8.49 cm raw -> 5.76 cm after center calibration -> 4.68 cm "
            "after center+offset calibration (~1.8x total)"
        ),
    )
    for row in displacement_rows:
        result.add_row(**row)
    for level in ("none", "center", "full"):
        result.add_row(
            case=f"tag error, calibration={level}",
            error_cm=float(np.mean(level_errors[level])) * 100.0,
        )
    return result


def run_fig21_rotating_tag(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 21: antenna localization from a turntable scan, per radius.

    Turntable center 0.7 m in front of the antenna; radii 10-25 cm.
    Expected: error along x (perpendicular to the center-antenna line)
    smaller than along y, and errors shrinking as the radius grows.
    """
    rng = np.random.default_rng(seed)
    repetitions = 5 if fast else 20
    read_rate = 40.0 if fast else 120.0
    antenna = Antenna(physical_center=(0.0, 0.7, 0.0), boresight=(0.0, -1.0, 0.0))
    truth = antenna.phase_center[:2]
    result = ExperimentResult(
        figure_id="fig21",
        title="Rotating-tag antenna localization vs turntable radius",
        columns=["radius_m", "err_x_cm", "err_y_cm", "err_total_cm"],
        paper_expectation=(
            "x-axis error smaller than y-axis error (errors distribute "
            "along the scan-center-to-target line); error decreases with "
            "increasing radius"
        ),
    )
    for radius in (0.10, 0.15, 0.20, 0.25):
        per_axis, totals = [], []
        for _ in range(repetitions):
            scan = simulate_scan(
                CircularTrajectory(center=(0.0, 0.0, 0.0), radius=radius),
                antenna,
                rng=rng,
                noise=GaussianPhaseNoise(0.1),
                read_rate_hz=read_rate,
            )
            report = pipeline.estimate(
                "lion",
                pipeline.EstimationRequest.from_scan(scan),
                {"dim": 2, "interval_m": min(radius, 0.2)},
            )
            per_axis.append(axis_errors(report.position, truth))
            totals.append(distance_error(report.position, truth))
        mean_axis = np.mean(np.vstack(per_axis), axis=0) * 100.0
        result.add_row(
            radius_m=radius,
            err_x_cm=float(mean_axis[0]),
            err_y_cm=float(mean_axis[1]),
            err_total_cm=float(np.mean(totals)) * 100.0,
        )
    return result
