"""Experiment harness: regenerate every figure of the paper's evaluation.

Each figure has a runner in :mod:`repro.experiments.figures` returning an
:class:`repro.experiments.metrics.ExperimentResult` — a table of rows plus
the paper's reported numbers for side-by-side comparison. The CLI
(``python -m repro``) and the ``benchmarks/`` suite are thin layers over
these runners.
"""

from repro.experiments.metrics import (
    ExperimentResult,
    axis_errors,
    distance_error,
    error_cdf,
    summarize_errors,
)
from repro.experiments.scenarios import (
    EvaluationGeometry,
    make_conveyor_scan,
    make_room_reflectors,
    standard_antenna,
)
from repro.experiments.figures import FIGURE_RUNNERS, run_figure

__all__ = [
    "ExperimentResult",
    "distance_error",
    "axis_errors",
    "error_cdf",
    "summarize_errors",
    "EvaluationGeometry",
    "standard_antenna",
    "make_conveyor_scan",
    "make_room_reflectors",
    "FIGURE_RUNNERS",
    "run_figure",
]
