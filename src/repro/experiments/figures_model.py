"""Figures 6 and 9: simulation studies of the linear model itself.

These mirror the paper's Sec. III simulations exactly: ideal phase
generation ``theta = (4*pi/lambda) d + offset`` plus Gaussian noise
N(0, 0.1 rad), no antenna pattern or multipath — the point is to compare
the *models* (LION vs hologram), not the channel.
"""

from __future__ import annotations

import numpy as np

from repro import pipeline
from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.experiments.metrics import ExperimentResult, axis_errors, distance_error


def _ideal_phases(
    positions: np.ndarray,
    target: np.ndarray,
    noise_std: float,
    rng: np.random.Generator,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    offset_rad: float = 0.7,
) -> np.ndarray:
    """Wrapped Eq. (1) phases for a target, Gaussian noise, no channel."""
    distances = np.linalg.norm(positions - target[np.newaxis, :], axis=1)
    theta = 2.0 * TWO_PI / wavelength_m * distances + offset_rad
    theta = theta + rng.normal(0.0, noise_std, size=distances.shape)
    return np.mod(theta, TWO_PI)


def _circle_positions(radius_m: float, count: int) -> np.ndarray:
    angles = np.linspace(0.0, TWO_PI, count, endpoint=False)
    return np.stack([radius_m * np.cos(angles), radius_m * np.sin(angles)], axis=1)


def run_fig06_directions(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 6: LION vs hologram for an antenna at different directions.

    Tag circles the origin (r = 0.3 m); the antenna sits 1 m away at
    azimuth 0, 45 and 90 degrees. 100 repetitions with N(0, 0.1) noise.
    Expected: comparable accuracy to the hologram, steady total error,
    axis errors rotating with the antenna direction (estimates scatter
    along the trajectory-center-to-antenna line).
    """
    rng = np.random.default_rng(seed)
    repetitions = 15 if fast else 100
    sample_count = 120 if fast else 360
    hologram_grid = 0.005 if fast else 0.002
    positions = _circle_positions(0.3, sample_count)
    localizer = pipeline.create_estimator(
        "lion", {"dim": 2, "smoothing_window": 5, "interval_m": 0.3}
    )
    hologram = pipeline.create_estimator(
        "hologram", {"grid_size_m": hologram_grid, "augmentation_rounds": 1}
    )

    result = ExperimentResult(
        figure_id="fig06",
        title="Single-antenna localization at different directions (circle scan)",
        columns=[
            "direction_deg",
            "method",
            "mean_error_cm",
            "mean_abs_x_cm",
            "mean_abs_y_cm",
        ],
        paper_expectation=(
            "LION comparable to the hologram; total error steady across "
            "directions while per-axis errors follow the antenna direction"
        ),
    )
    for direction_deg in (0.0, 45.0, 90.0):
        angle = np.radians(direction_deg)
        antenna = np.array([np.cos(angle), np.sin(angle)])
        errors = {"LION": [], "DAH": []}
        axes = {"LION": [], "DAH": []}
        for _ in range(repetitions):
            phases = _ideal_phases(positions, antenna, 0.1, rng)
            lion = localizer.estimate(
                pipeline.EstimationRequest(positions=positions, phases_rad=phases)
            )
            errors["LION"].append(distance_error(lion.position, antenna))
            axes["LION"].append(axis_errors(lion.position, antenna))

            subsample = slice(None, None, max(sample_count // 30, 1))
            dah = hologram.estimate(
                pipeline.EstimationRequest(
                    positions=positions[subsample],
                    phases_rad=phases[subsample],
                    bounds=(
                        (antenna[0] - 0.15, antenna[0] + 0.15),
                        (antenna[1] - 0.15, antenna[1] + 0.15),
                    ),
                )
            )
            errors["DAH"].append(distance_error(dah.position, antenna))
            axes["DAH"].append(axis_errors(dah.position, antenna))
        for method in ("LION", "DAH"):
            per_axis = np.mean(np.vstack(axes[method]), axis=0)
            result.add_row(
                direction_deg=direction_deg,
                method=method,
                mean_error_cm=float(np.mean(errors[method])) * 100.0,
                mean_abs_x_cm=float(per_axis[0]) * 100.0,
                mean_abs_y_cm=float(per_axis[1]) * 100.0,
            )
    return result


def run_fig09_lower_dimension(seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Fig. 9: 2D localization from a *linear* trajectory (lower-dimension).

    Tag sweeps x in [-0.3, 0.3], antenna at (0.2, 1.0). The linear system
    only observes x and d_r; y is recovered from the reference distance.
    Expected: LION works well and is comparable to the hologram.
    """
    rng = np.random.default_rng(seed)
    repetitions = 15 if fast else 100
    sample_count = 100 if fast else 300
    hologram_grid = 0.005 if fast else 0.002
    x = np.linspace(-0.3, 0.3, sample_count)
    positions = np.stack([x, np.zeros_like(x)], axis=1)
    antenna = np.array([0.2, 1.0])
    localizer = pipeline.create_estimator(
        "lion", {"dim": 2, "smoothing_window": 5, "interval_m": 0.2}
    )
    hologram = pipeline.create_estimator(
        "hologram", {"grid_size_m": hologram_grid, "augmentation_rounds": 1}
    )

    lion_errors, dah_errors = [], []
    for _ in range(repetitions):
        phases = _ideal_phases(positions, antenna, 0.1, rng)
        lion = localizer.estimate(
            pipeline.EstimationRequest(positions=positions, phases_rad=phases)
        )
        lion_errors.append(distance_error(lion.position, antenna))
        subsample = slice(None, None, max(sample_count // 30, 1))
        dah = hologram.estimate(
            pipeline.EstimationRequest(
                positions=positions[subsample],
                phases_rad=phases[subsample],
                bounds=(
                    (antenna[0] - 0.15, antenna[0] + 0.15),
                    (antenna[1] - 0.15, antenna[1] + 0.15),
                ),
            )
        )
        dah_errors.append(distance_error(dah.position, antenna))

    result = ExperimentResult(
        figure_id="fig09",
        title="2D localization with a linear trajectory (lower-dimension issue)",
        columns=["method", "mean_error_cm", "median_error_cm", "p90_error_cm"],
        paper_expectation=(
            "LION works well with the linear trajectory and achieves "
            "performance comparable to the hologram-based method"
        ),
    )
    for method, errors in (("LION", lion_errors), ("DAH", dah_errors)):
        arr = np.asarray(errors)
        result.add_row(
            method=method,
            mean_error_cm=float(np.mean(arr)) * 100.0,
            median_error_cm=float(np.median(arr)) * 100.0,
            p90_error_cm=float(np.percentile(arr, 90)) * 100.0,
        )
    return result
