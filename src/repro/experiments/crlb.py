"""Cramér-Rao lower bounds for phase-based localization.

An analysis extension beyond the paper: given the scan geometry and a
phase-noise level, what accuracy is *information-theoretically* possible?
The bound contextualises the evaluation figures — e.g. why depth (y)
degrades faster than the along-track axis (x) with a linear scan
(Fig. 14), and why a larger turntable radius helps (Fig. 21).

Measurement model (one read per position, independent Gaussian phase
noise): ``theta_i = (4*pi/lambda) * |p_i - q| + c + n_i``, with target
``q`` and an unknown constant ``c`` (the hardware offset + reference
ambiguity — estimating it alongside ``q`` mirrors LION's unknown ``d_r``).
The Fisher information is assembled over the unit direction vectors from
the scan positions to the target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI


@dataclass(frozen=True)
class CrlbResult:
    """CRLB of a scan geometry.

    Attributes:
        covariance: the ``dim x dim`` position block of the inverse Fisher
            information, square meters.
        position_std_m: sqrt of the covariance trace — the RMS bound on
            total position error.
        axis_std_m: per-axis standard-deviation bounds, meters.
    """

    covariance: np.ndarray
    position_std_m: float
    axis_std_m: np.ndarray


def phase_localization_crlb(
    positions: np.ndarray,
    target: np.ndarray,
    phase_noise_std_rad: float,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    estimate_offset: bool = True,
) -> CrlbResult:
    """CRLB for locating ``target`` from phases at ``positions``.

    Args:
        positions: scan positions, shape ``(n, dim)``, dim 2 or 3.
        target: true target position, shape ``(dim,)``.
        phase_noise_std_rad: per-read phase noise sigma.
        wavelength_m: carrier wavelength.
        estimate_offset: include the unknown constant phase offset as a
            nuisance parameter (True matches LION's observability; False
            gives the bound for a hypothetical absolute-phase system).

    Raises:
        ValueError: on bad shapes, non-positive noise, a target colliding
            with a scan position, or a geometry whose Fisher information
            is singular (e.g. a linear scan in 3D).
    """
    points = np.asarray(positions, dtype=float)
    q = np.asarray(target, dtype=float)
    if points.ndim != 2 or points.shape[1] not in (2, 3):
        raise ValueError(f"positions must be (n, 2) or (n, 3), got {points.shape}")
    if q.shape != (points.shape[1],):
        raise ValueError(f"target must have shape ({points.shape[1]},), got {q.shape}")
    if phase_noise_std_rad <= 0.0:
        raise ValueError("phase noise sigma must be positive")
    if wavelength_m <= 0.0:
        raise ValueError("wavelength must be positive")

    differences = q[np.newaxis, :] - points
    distances = np.linalg.norm(differences, axis=1)
    if np.any(distances < 1e-9):
        raise ValueError("target coincides with a scan position")
    directions = differences / distances[:, np.newaxis]

    k = 2.0 * TWO_PI / wavelength_m  # d(theta)/d(distance)
    dim = points.shape[1]
    if estimate_offset:
        jacobian = np.hstack([k * directions, np.ones((points.shape[0], 1))])
    else:
        jacobian = k * directions
    fisher = jacobian.T @ jacobian / phase_noise_std_rad**2
    try:
        inverse = np.linalg.inv(fisher)
    except np.linalg.LinAlgError as error:
        raise ValueError(
            "singular Fisher information: the scan geometry cannot observe "
            "the target (degenerate trajectory)"
        ) from error
    covariance = inverse[:dim, :dim]
    axis_std = np.sqrt(np.diag(covariance))
    return CrlbResult(
        covariance=covariance,
        position_std_m=float(np.sqrt(np.trace(covariance))),
        axis_std_m=axis_std,
    )


def efficiency(observed_rmse_m: float, bound: CrlbResult) -> float:
    """Ratio CRLB / observed RMSE in ``(0, 1]``-ish (1 = efficient).

    Values slightly above 1 can occur from finite-sample evaluation noise.

    Raises:
        ValueError: for non-positive observed error.
    """
    if observed_rmse_m <= 0.0:
        raise ValueError("observed RMSE must be positive")
    return bound.position_std_m / observed_rmse_m
