"""Terminal visualization: ASCII plots for figures and holograms.

The reproduction environment is a terminal; rather than depend on a
plotting stack, these helpers render the evaluation's curves, holograms
and scatter clouds as compact ASCII art — enough to *see* the U-shape of
Fig. 17 or the hyperbola ridge of Fig. 4 next to the numbers. Used by the
CLI's ``--plot`` flag and freely available to notebooks and scripts.

All functions return strings (no printing) so they compose and test
cleanly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Shade ramp from empty to full, used by the heatmap renderer.
_SHADES = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """One-line sparkline of a series, e.g. ``▂▃▅▇█▆▃``.

    Args:
        values: the series; NaNs render as spaces.
        width: optional resampling width (default: one cell per value).

    Raises:
        ValueError: for an empty series.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot render an empty series")
    if width is not None and width > 0 and array.size != width:
        indices = np.linspace(0, array.size - 1, width)
        array = np.interp(indices, np.arange(array.size), array)
    blocks = "▁▂▃▄▅▆▇█"
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return " " * array.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    cells = []
    for value in array:
        if not np.isfinite(value):
            cells.append(" ")
            continue
        level = 0 if span == 0.0 else int((value - low) / span * (len(blocks) - 1))
        cells.append(blocks[level])
    return "".join(cells)


def line_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: str = "",
    marker: str = "*",
) -> str:
    """A rectangular ASCII line/scatter plot with axis annotations.

    Args:
        x / y: the series (equal length, at least one finite point).
        width / height: canvas size in characters.
        title: optional heading line.
        marker: character to place at data points.

    Raises:
        ValueError: on mismatched or empty input, or a degenerate canvas.
    """
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.shape != ys.shape or xs.size == 0:
        raise ValueError("x and y must be equal-length, non-empty series")
    if width < 8 or height < 3:
        raise ValueError("canvas too small")
    mask = np.isfinite(xs) & np.isfinite(ys)
    if not mask.any():
        raise ValueError("no finite points to plot")
    xs, ys = xs[mask], ys[mask]

    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for px, py in zip(xs, ys):
        column = int((px - x_low) / x_span * (width - 1))
        row = height - 1 - int((py - y_low) / y_span * (height - 1))
        canvas[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    label_high = f"{y_high:.4g}"
    label_low = f"{y_low:.4g}"
    gutter = max(len(label_high), len(label_low))
    for index, row in enumerate(canvas):
        if index == 0:
            prefix = label_high.rjust(gutter)
        elif index == height - 1:
            prefix = label_low.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}|")
    footer = f"{' ' * gutter} +{'-' * width}+"
    lines.append(footer)
    lines.append(
        f"{' ' * gutter}  {f'{x_low:.4g}'.ljust(width // 2)}"
        f"{f'{x_high:.4g}'.rjust(width - width // 2)}"
    )
    return "\n".join(lines)


def heatmap(
    grid: np.ndarray,
    width: int = 60,
    height: int = 24,
    title: str = "",
) -> str:
    """Render a 2-D array (e.g. a hologram) as shaded ASCII.

    The array's first axis maps to plot columns (x) and the second to
    rows (y, increasing upward), matching the hologram convention.

    Raises:
        ValueError: for a non-2D or empty array.
    """
    array = np.asarray(grid, dtype=float)
    if array.ndim != 2 or array.size == 0:
        raise ValueError(f"expected a non-empty 2-D array, got shape {array.shape}")
    # Downsample by block-averaging onto the target canvas.
    x_cells = min(width, array.shape[0])
    y_cells = min(height, array.shape[1])
    x_edges = np.linspace(0, array.shape[0], x_cells + 1).astype(int)
    y_edges = np.linspace(0, array.shape[1], y_cells + 1).astype(int)
    image = np.empty((x_cells, y_cells))
    for i in range(x_cells):
        for j in range(y_cells):
            block = array[x_edges[i]:max(x_edges[i + 1], x_edges[i] + 1),
                          y_edges[j]:max(y_edges[j + 1], y_edges[j] + 1)]
            image[i, j] = float(np.nanmax(block))
    finite = image[np.isfinite(image)]
    low = float(finite.min()) if finite.size else 0.0
    high = float(finite.max()) if finite.size else 1.0
    span = high - low or 1.0
    lines = [title] if title else []
    for j in reversed(range(y_cells)):  # top row = largest y
        row = []
        for i in range(x_cells):
            value = image[i, j]
            if not np.isfinite(value):
                row.append(" ")
            else:
                level = int((value - low) / span * (len(_SHADES) - 1))
                row.append(_SHADES[level])
        lines.append("".join(row))
    return "\n".join(lines)


def scatter_2d(
    points: np.ndarray,
    truth: "np.ndarray | None" = None,
    width: int = 50,
    height: int = 20,
    title: str = "",
) -> str:
    """Scatter plot of 2-D estimates with an optional truth marker ``X``.

    Raises:
        ValueError: for an empty or non-2-column point set.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim != 2 or array.shape[1] != 2 or array.shape[0] == 0:
        raise ValueError(f"expected (n, 2) points, got shape {array.shape}")
    xs, ys = array[:, 0], array[:, 1]
    all_x = xs if truth is None else np.append(xs, truth[0])
    all_y = ys if truth is None else np.append(ys, truth[1])
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for px, py in zip(xs, ys):
        column = int((px - x_low) / x_span * (width - 1))
        row = height - 1 - int((py - y_low) / y_span * (height - 1))
        if canvas[row][column] == " ":
            canvas[row][column] = "o"
        elif canvas[row][column] == "o":
            canvas[row][column] = "O"
    if truth is not None:
        column = int((truth[0] - x_low) / x_span * (width - 1))
        row = height - 1 - int((truth[1] - y_low) / y_span * (height - 1))
        canvas[row][column] = "X"
    lines = [title] if title else []
    lines += ["|" + "".join(row) + "|" for row in canvas]
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)
