"""LION: linear localization and phase calibration for RFID antennas.

A full reproduction of *"Pinpoint Achilles' Heel in RFID Localization:
Phase Calibration of RFID Antenna based on Linear Localization Model"*
(ICDCS 2022), including the RF/trajectory substrates the paper's COTS
testbed provided, the LION linear model itself, the baselines it is
compared against, and the experiment harness that regenerates every figure.

Quickstart::

    import numpy as np
    from repro import (
        EstimationRequest, LinearTrajectory, default_antenna, estimate,
        simulate_scan,
    )

    rng = np.random.default_rng(7)
    antenna = default_antenna((0.2, 1.0, 0.0), rng)
    scan = simulate_scan(
        LinearTrajectory((-0.4, 0.0, 0.0), (0.4, 0.0, 0.0)), antenna, rng=rng
    )
    report = estimate("lion", EstimationRequest.from_scan(scan), {"dim": 2})
    print(report.position)            # ~ the antenna's true phase center (x, y)

Every method — LION and the paper's baselines — is served by name
through the :mod:`repro.pipeline` registry (``estimator_names()`` lists
them); the underlying solver classes remain importable from
:mod:`repro.core` and :mod:`repro.baselines`. See ``examples/`` for
complete calibration and tracking applications.
"""

from repro.constants import (
    DEFAULT_FREQUENCY_HZ,
    DEFAULT_WAVELENGTH_M,
    SPEED_OF_LIGHT,
    wavelength_for_frequency,
)
from repro.core import (
    AdaptiveResult,
    AntennaCalibration,
    CalibratedArray,
    DifferentialResult,
    TrackingResult,
    LionLocalizer,
    LocalizationResult,
    ParameterGrid,
    PreprocessConfig,
    Solution,
    solve_weighted_least_squares_batch,
    MultiReferenceSolution,
    OnlineLionLocalizer,
    PairingDiagnostics,
    SolutionUncertainty,
    adaptive_localize,
    analyze_pairing,
    calibrate_antenna,
    differential_hologram,
    locate_multireference,
    estimate_phase_offset,
    locate_tag_differential,
    locate_tag_with_array,
    relative_phase_offsets,
    track_tag_start,
    uncertainty_of,
)
from repro.baselines import (
    DifferentialHologram,
    locate_hyperbola,
    locate_parabola_2d,
    locate_rotating_tag,
)
from repro.datasets import (
    ScanData,
    default_antenna,
    read_records_csv,
    simulate_scan,
    simulate_static_reads,
    write_records_csv,
)
from repro.rf import (
    Antenna,
    Channel,
    ChannelConfig,
    BurstyPhaseNoise,
    GaussianPhaseNoise,
    NoPhaseNoise,
    ReadRecord,
    Reader,
    ReaderConfig,
    Reflector,
    SnrScaledPhaseNoise,
    Tag,
    WallReflector,
)
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    collect_manifest,
    configure_logging,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    get_logger,
    get_registry,
    get_trace,
    render_trace,
    span,
)
from repro.pipeline import (
    EstimationReport,
    EstimationRequest,
    Estimator,
    EstimatorConfig,
    EstimatorSpec,
    create_estimator,
    estimate,
    estimate_many,
    estimator_names,
    get_spec,
    list_estimators,
    register_estimator,
    resolve_config,
)
from repro.parallel import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_jobs,
    set_default_jobs,
)
from repro.trajectory import (
    CircularTrajectory,
    LinearTrajectory,
    RasterScan,
    ThreeLineScan,
    Trajectory,
    TrajectorySamples,
    TwoLineScan,
    WaypointTrajectory,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "SPEED_OF_LIGHT",
    "DEFAULT_FREQUENCY_HZ",
    "DEFAULT_WAVELENGTH_M",
    "wavelength_for_frequency",
    # core
    "LionLocalizer",
    "LocalizationResult",
    "PreprocessConfig",
    "Solution",
    "solve_weighted_least_squares_batch",
    "AdaptiveResult",
    "ParameterGrid",
    "adaptive_localize",
    "AntennaCalibration",
    "calibrate_antenna",
    "estimate_phase_offset",
    "relative_phase_offsets",
    "CalibratedArray",
    "DifferentialResult",
    "differential_hologram",
    "locate_tag_differential",
    "locate_tag_with_array",
    "TrackingResult",
    "track_tag_start",
    "MultiReferenceSolution",
    "locate_multireference",
    "OnlineLionLocalizer",
    "PairingDiagnostics",
    "analyze_pairing",
    "SolutionUncertainty",
    "uncertainty_of",
    # pipeline (estimator protocol + registry)
    "EstimationRequest",
    "EstimationReport",
    "Estimator",
    "EstimatorConfig",
    "EstimatorSpec",
    "register_estimator",
    "estimator_names",
    "list_estimators",
    "get_spec",
    "resolve_config",
    "create_estimator",
    "estimate",
    "estimate_many",
    # parallel execution
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_jobs",
    "set_default_jobs",
    # observability
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_trace",
    "render_trace",
    "MetricsRegistry",
    "enable_metrics",
    "disable_metrics",
    "get_registry",
    "RunManifest",
    "collect_manifest",
    "get_logger",
    "configure_logging",
    # baselines
    "DifferentialHologram",
    "locate_hyperbola",
    "locate_parabola_2d",
    "locate_rotating_tag",
    # datasets
    "ScanData",
    "default_antenna",
    "simulate_scan",
    "simulate_static_reads",
    "read_records_csv",
    "write_records_csv",
    # rf
    "Antenna",
    "Tag",
    "Channel",
    "ChannelConfig",
    "Reader",
    "ReaderConfig",
    "ReadRecord",
    "Reflector",
    "WallReflector",
    "BurstyPhaseNoise",
    "GaussianPhaseNoise",
    "SnrScaledPhaseNoise",
    "NoPhaseNoise",
    # trajectories
    "Trajectory",
    "TrajectorySamples",
    "LinearTrajectory",
    "CircularTrajectory",
    "RasterScan",
    "ThreeLineScan",
    "TwoLineScan",
    "WaypointTrajectory",
]
