"""Serve-time calibration resolution with a generation-stamped cache.

A serving request for the differential multi-antenna estimator can name
its antennas (``EstimationRequest.antennas``) instead of shipping
explicit centers and offset corrections; the resolver fills those fields
from the registry's latest committed calibrations at prepare time. The
lookup is cached per ``(antenna tuple, dim)`` and stamped with the
store's commit **generation**: any commit anywhere in the fleet advances
the generation, so the next lookup misses and re-reads — serving picks
up a freshly committed calibration without watching individual antennas
or invalidating entries by hand.

Correctness note: the resolver *rewrites the request* rather than
patching the estimator call, so the engine's result-cache fingerprint
covers the resolved arrays — two requests naming the same antennas
across a recalibration hash differently and never share a cached result.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.calib.store import CalibrationStore
from repro.obs import get_registry, metrics_enabled
from repro.pipeline.contract import EstimationRequest

_CacheKey = Tuple[Tuple[str, ...], int, int]


class CalibrationResolver:
    """Resolves ``request.antennas`` into centers and offset corrections.

    Args:
        store: the calibration registry.
        max_entries: LRU bound on distinct ``(antennas, dim)`` tuples
            kept per generation.
    """

    def __init__(self, store: CalibrationStore, max_entries: int = 256) -> None:
        self.store = store
        self._max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._cache: "OrderedDict[_CacheKey, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0

    # -- lookup -----------------------------------------------------------

    def lookup(
        self, antennas: Tuple[str, ...], dim: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Centers ``(n, dim)`` and relative offsets ``(n,)``, cached."""
        generation = self.store.generation
        key: _CacheKey = (antennas, dim, generation)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                self._count("hit")
                return cached
        centers = self.store.centers_for(antennas, dim=dim)
        offsets = self.store.offsets_for(antennas)
        centers.setflags(write=False)
        offsets.setflags(write=False)
        entry = (centers, offsets)
        with self._lock:
            self._misses += 1
            self._count("miss")
            # Entries from older generations are dead weight; drop them
            # before the LRU bound, so the cache holds one generation.
            stale = [k for k in self._cache if k[2] != generation]
            for k in stale:
                del self._cache[k]
            self._cache[key] = entry
            while len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)
        if metrics_enabled():
            get_registry().gauge("serve.calib.generation").set(float(generation))
        return entry

    def _count(self, result: str) -> None:
        if metrics_enabled():
            get_registry().counter("serve.calib.lookups_total", result=result).inc()

    # -- request rewriting ------------------------------------------------

    def resolve(self, request: EstimationRequest) -> EstimationRequest:
        """Fill ``positions`` / ``offset_corrections_rad`` from the store.

        No-op when the request names no antennas or already carries both
        fields explicitly (explicit values always win). Raises
        :class:`repro.calib.errors.UnknownAntennaError` for antennas the
        store has never seen.
        """
        antennas = request.antennas
        if not antennas:
            return request
        needs_positions = request.positions is None
        needs_offsets = request.offset_corrections_rad is None
        if not needs_positions and not needs_offsets:
            return request
        started = time.perf_counter()
        dim = len(request.bounds) if request.bounds is not None else 3
        centers, offsets = self.lookup(tuple(antennas), dim)
        fields: Dict[str, Any] = {}
        if needs_positions:
            fields["positions"] = centers
        if needs_offsets:
            fields["offset_corrections_rad"] = offsets
        resolved = replace(request, **fields)
        if metrics_enabled():
            get_registry().histogram("serve.calib.resolve_seconds").observe(
                time.perf_counter() - started
            )
        return resolved

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Cache counters for ``stats()`` / ``/statz`` payloads."""
        with self._lock:
            hits, misses, entries = self._hits, self._misses, len(self._cache)
        total = hits + misses
        return {
            "generation": self.store.generation,
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else None,
        }

    def invalidate(self) -> None:
        """Drop every cached entry (tests, manual store surgery)."""
        with self._lock:
            self._cache.clear()


def resolver_stats(resolver: Optional[CalibrationResolver]) -> Dict[str, Any]:
    """``stats()`` of a maybe-absent resolver, JSON-safe."""
    if resolver is None:
        return {"enabled": False}
    return {"enabled": True, **resolver.stats()}
