"""Error taxonomy of the calibration registry.

Every failure the store can produce maps onto one of these so callers
(the HTTP routes, the CLI, the scheduler) can branch on *kind* rather
than parse messages: a version conflict is a retryable race, an unknown
antenna is a 404, a corrupt record is an operator page.
"""

from __future__ import annotations


class CalibStoreError(RuntimeError):
    """Base class for calibration-store failures."""


class VersionConflictError(CalibStoreError):
    """Compare-and-swap commit lost the race.

    Raised when ``expected_version`` does not match the antenna's current
    latest version at commit time. The losing writer should re-read the
    latest record and decide whether its calibration still supersedes it.
    """

    def __init__(self, antenna: str, expected: int, actual: int) -> None:
        super().__init__(
            f"calibration for {antenna!r}: expected version {expected}, "
            f"store is at {actual}"
        )
        self.antenna = antenna
        self.expected = expected
        self.actual = actual


class UnknownAntennaError(CalibStoreError):
    """Lookup of an antenna the store has no records for."""

    def __init__(self, antenna: str) -> None:
        super().__init__(f"no calibration records for antenna {antenna!r}")
        self.antenna = antenna


class CorruptRecordError(CalibStoreError):
    """A persisted record failed to parse or validate on load."""
