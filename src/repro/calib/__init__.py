"""Fleet-scale calibration registry (store, drift detection, scheduling).

The paper calibrates one antenna once (:mod:`repro.core.calibration`);
this package manages calibration as a *lifecycle* across an antenna
fleet, the regime RF-CHORD-scale deployments live in:

* :mod:`repro.calib.records` / :mod:`repro.calib.store` — append-only,
  versioned per-antenna records with provenance, atomic JSON-on-disk
  persistence and compare-and-swap commits;
* :mod:`repro.calib.staleness` — age/error budgets plus the streaming
  layer's drift alarms folded into per-antenna health;
* :mod:`repro.calib.scheduler` — recalibration cycles fanned through
  :mod:`repro.parallel` executors, committed transactionally;
* :mod:`repro.calib.resolver` — serve-time resolution of antenna names
  into calibrated centers and offset corrections, cached per store
  generation.

Import hygiene: only the serving layer (:mod:`repro.serve`), the CLI
and benchmarks/tests may import this package (enforced by
``tools/check_import_hygiene.py``); the core physics stays unaware of
fleet management.
"""

from repro.calib.errors import (
    CalibStoreError,
    CorruptRecordError,
    UnknownAntennaError,
    VersionConflictError,
)
from repro.calib.records import KNOWN_SOURCES, CalibrationRecord
from repro.calib.resolver import CalibrationResolver, resolver_stats
from repro.calib.scheduler import (
    CalibrationOutcome,
    CalibrationTask,
    RecalibrationReport,
    RecalibrationScheduler,
    fleet_scan_source,
    solve_calibration_task,
)
from repro.calib.staleness import (
    DRIFT_ALARM_KIND,
    AntennaHealth,
    DriftMonitor,
    FleetHealth,
    StalenessPolicy,
)
from repro.calib.store import FORMAT_VERSION, CalibrationStore

__all__ = [
    "AntennaHealth",
    "CalibStoreError",
    "CalibrationOutcome",
    "CalibrationRecord",
    "CalibrationResolver",
    "CalibrationStore",
    "CalibrationTask",
    "CorruptRecordError",
    "DRIFT_ALARM_KIND",
    "DriftMonitor",
    "FORMAT_VERSION",
    "FleetHealth",
    "KNOWN_SOURCES",
    "RecalibrationReport",
    "RecalibrationScheduler",
    "StalenessPolicy",
    "UnknownAntennaError",
    "VersionConflictError",
    "fleet_scan_source",
    "resolver_stats",
    "solve_calibration_task",
]
