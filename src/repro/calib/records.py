"""Versioned, JSON-safe calibration records.

A :class:`CalibrationRecord` wraps one
:class:`repro.core.calibration.AntennaCalibration` with everything fleet
management needs beyond the physics: a monotonically increasing
per-antenna version, a wall-clock commit timestamp, the provenance of the
run that produced it (a serialized :class:`repro.obs.RunManifest` plus
the estimator config hash), and quality stats of the calibration scan
(read count, adaptive-sweep residual). Records are immutable and
round-trip losslessly through plain JSON dicts — the store's on-disk
format is exactly :meth:`CalibrationRecord.to_dict`, one record per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.calib.errors import CorruptRecordError
from repro.core.calibration import AntennaCalibration

#: Record sources the registry distinguishes. ``scan`` is a direct
#: field calibration, ``scheduled`` came from the recalibration
#: scheduler, ``manual`` via the HTTP/CLI surface, ``seed`` from fleet
#: bootstrap.
KNOWN_SOURCES: Tuple[str, ...] = ("scan", "scheduled", "manual", "seed")


def _as_vec3(value: Any, name: str) -> Tuple[float, float, float]:
    array = np.asarray(value, dtype=float).reshape(-1)
    if array.shape != (3,) or not np.all(np.isfinite(array)):
        raise CorruptRecordError(f"{name} must be a finite 3-vector, got {value!r}")
    return (float(array[0]), float(array[1]), float(array[2]))


@dataclass(frozen=True)
class CalibrationRecord:
    """One committed calibration version for one antenna.

    Attributes:
        antenna: antenna identifier (the store's primary key).
        version: per-antenna version, 1-based, assigned by the store.
        physical_center: manually measured center, meters.
        estimated_center: calibrated phase center, meters.
        phase_offset_rad: ``theta_T + theta_R`` estimate (Eq. 17).
        created_unix: commit wall-clock time, seconds since the epoch.
        source: one of :data:`KNOWN_SOURCES`.
        reads: number of reads in the calibration scan, when known.
        residual_rms_m: RMS residual of the winning adaptive solve, when
            known — the error budget staleness checks can gate on.
        config_hash: estimator/config fingerprint of the producing run.
        manifest: serialized :class:`repro.obs.RunManifest` provenance.
    """

    antenna: str
    version: int
    physical_center: Tuple[float, float, float]
    estimated_center: Tuple[float, float, float]
    phase_offset_rad: float
    created_unix: float
    source: str = "scan"
    reads: Optional[int] = None
    residual_rms_m: Optional[float] = None
    config_hash: Optional[str] = None
    manifest: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.antenna:
            raise CorruptRecordError("record must name an antenna")
        if self.version < 1:
            raise CorruptRecordError(f"version must be >= 1, got {self.version}")
        if self.source not in KNOWN_SOURCES:
            raise CorruptRecordError(
                f"unknown record source {self.source!r}; expected one of {KNOWN_SOURCES}"
            )
        if not np.isfinite(self.phase_offset_rad):
            raise CorruptRecordError("phase offset must be finite")
        object.__setattr__(
            self, "physical_center", _as_vec3(self.physical_center, "physical_center")
        )
        object.__setattr__(
            self, "estimated_center", _as_vec3(self.estimated_center, "estimated_center")
        )

    @property
    def center_displacement(self) -> Tuple[float, float, float]:
        """Estimated minus physical center, meters."""
        delta = np.asarray(self.estimated_center) - np.asarray(self.physical_center)
        return (float(delta[0]), float(delta[1]), float(delta[2]))

    @property
    def displacement_magnitude_m(self) -> float:
        """Euclidean size of the center displacement."""
        return float(np.linalg.norm(np.asarray(self.center_displacement)))

    def age_s(self, now: float) -> float:
        """Seconds elapsed since the record was committed."""
        return max(0.0, now - self.created_unix)

    def to_calibration(self) -> AntennaCalibration:
        """The physics payload as the core layer's calibration record."""
        return AntennaCalibration(
            antenna_name=self.antenna,
            physical_center=np.asarray(self.physical_center, dtype=float),
            estimated_center=np.asarray(self.estimated_center, dtype=float),
            phase_offset_rad=float(self.phase_offset_rad),
        )

    @classmethod
    def from_calibration(
        cls,
        calibration: AntennaCalibration,
        version: int,
        created_unix: float,
        source: str = "scan",
        reads: Optional[int] = None,
        residual_rms_m: Optional[float] = None,
        config_hash: Optional[str] = None,
        manifest: Optional[Mapping[str, Any]] = None,
    ) -> "CalibrationRecord":
        """Wrap a core calibration result into a versioned record."""
        return cls(
            antenna=calibration.antenna_name,
            version=version,
            physical_center=_as_vec3(calibration.physical_center, "physical_center"),
            estimated_center=_as_vec3(calibration.estimated_center, "estimated_center"),
            phase_offset_rad=float(calibration.phase_offset_rad),
            created_unix=float(created_unix),
            source=source,
            reads=reads,
            residual_rms_m=residual_rms_m,
            config_hash=config_hash,
            manifest=dict(manifest) if manifest is not None else None,
        )

    def with_version(self, version: int) -> "CalibrationRecord":
        """A copy stamped with a different version (store commit path)."""
        return replace(self, version=version)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation; the store's on-disk line format."""
        payload: Dict[str, Any] = {
            "antenna": self.antenna,
            "version": self.version,
            "physical_center": list(self.physical_center),
            "estimated_center": list(self.estimated_center),
            "phase_offset_rad": self.phase_offset_rad,
            "created_unix": self.created_unix,
            "source": self.source,
        }
        if self.reads is not None:
            payload["reads"] = self.reads
        if self.residual_rms_m is not None:
            payload["residual_rms_m"] = self.residual_rms_m
        if self.config_hash is not None:
            payload["config_hash"] = self.config_hash
        if self.manifest is not None:
            payload["manifest"] = self.manifest
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CalibrationRecord":
        """Parse a persisted record; raises :class:`CorruptRecordError`."""
        try:
            return cls(
                antenna=str(payload["antenna"]),
                version=int(payload["version"]),
                physical_center=_as_vec3(payload["physical_center"], "physical_center"),
                estimated_center=_as_vec3(
                    payload["estimated_center"], "estimated_center"
                ),
                phase_offset_rad=float(payload["phase_offset_rad"]),
                created_unix=float(payload["created_unix"]),
                source=str(payload.get("source", "scan")),
                reads=None if payload.get("reads") is None else int(payload["reads"]),
                residual_rms_m=(
                    None
                    if payload.get("residual_rms_m") is None
                    else float(payload["residual_rms_m"])
                ),
                config_hash=(
                    None
                    if payload.get("config_hash") is None
                    else str(payload["config_hash"])
                ),
                manifest=(
                    None if payload.get("manifest") is None else dict(payload["manifest"])
                ),
            )
        except CorruptRecordError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptRecordError(f"malformed calibration record: {exc}") from exc

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Compact JSON-safe view for status tables and ``/statz``."""
        view: Dict[str, Any] = {
            "antenna": self.antenna,
            "version": self.version,
            "phase_offset_rad": round(self.phase_offset_rad, 6),
            "displacement_m": round(self.displacement_magnitude_m, 6),
            "source": self.source,
            "created_unix": self.created_unix,
        }
        if now is not None:
            view["age_s"] = round(self.age_s(now), 3)
        if self.residual_rms_m is not None:
            view["residual_rms_m"] = round(self.residual_rms_m, 6)
        return view
