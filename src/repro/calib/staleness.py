"""Staleness and drift detection over the calibration registry.

An antenna's calibration goes bad two ways: silently, by *aging* past
the budget the deployment trusts (offsets random-walk whether or not
anyone is watching), and loudly, by the streaming layer's
``calibration_drift_alarm`` events — :mod:`repro.stream` emits one when
a session's fast incremental estimate and its windowed re-solve diverge
beyond threshold, which in a calibrated deployment is the symptom of a
moved phase center or rotated offset. :class:`DriftMonitor` folds both
signals (plus the per-record residual error budget) into one verdict
per antenna.

The monitor consumes events *structurally* — anything with ``kind``,
``antenna`` and ``drift_m`` attributes — so this module does not import
:mod:`repro.stream` and stays below it in the layer diagram; attach it
to a live :class:`repro.stream.EventBus` with :meth:`DriftMonitor.attach`
(the bus's kind filter does the selection).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
)

from repro.calib.store import CalibrationStore

#: The event kind :class:`repro.stream.events.CalibrationDriftAlarm`
#: publishes under; referenced by name so :mod:`repro.calib` need not
#: import the stream layer.
DRIFT_ALARM_KIND = "calibration_drift_alarm"


class _SubscribableBus(Protocol):
    """The slice of ``repro.stream.EventBus`` the monitor needs."""

    def subscribe(
        self, callback: Callable[[Any], None], kinds: Optional[Tuple[str, ...]] = None
    ) -> int: ...


@dataclass(frozen=True)
class StalenessPolicy:
    """Budgets that decide when a calibration stops being trusted.

    Attributes:
        max_age_s: trusted lifetime of a committed record; older means
            stale regardless of observed behaviour.
        max_drift_alarms: drift alarms tolerated inside ``alarm_window_s``
            before the antenna is marked stale.
        alarm_window_s: sliding window over which alarms are counted.
        max_residual_rms_m: optional error budget on the committed
            record's adaptive residual; a calibration that solved badly
            is stale from birth.
        aging_fraction: fraction of ``max_age_s`` past which an antenna
            reports ``aging`` (recalibrate opportunistically, before the
            hard budget trips).
    """

    max_age_s: float = 24.0 * 3600.0
    max_drift_alarms: int = 3
    alarm_window_s: float = 600.0
    max_residual_rms_m: Optional[float] = None
    aging_fraction: float = 0.75

    def __post_init__(self) -> None:
        if self.max_age_s <= 0.0 or self.alarm_window_s <= 0.0:
            raise ValueError("age and alarm windows must be positive")
        if self.max_drift_alarms < 1:
            raise ValueError("max_drift_alarms must be >= 1")
        if not 0.0 < self.aging_fraction <= 1.0:
            raise ValueError("aging_fraction must be in (0, 1]")


@dataclass(frozen=True)
class AntennaHealth:
    """One antenna's verdict.

    ``status`` is one of ``fresh`` / ``aging`` / ``stale`` /
    ``uncalibrated``; ``reasons`` lists every tripped budget (an antenna
    can be both over-age and alarming).
    """

    antenna: str
    status: str
    reasons: Tuple[str, ...] = ()
    version: int = 0
    age_s: Optional[float] = None
    alarms: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view for ``/statz`` and the CLI."""
        payload: Dict[str, Any] = {
            "antenna": self.antenna,
            "status": self.status,
            "version": self.version,
            "alarms": self.alarms,
        }
        if self.age_s is not None:
            payload["age_s"] = round(self.age_s, 3)
        if self.reasons:
            payload["reasons"] = list(self.reasons)
        return payload


@dataclass(frozen=True)
class FleetHealth:
    """The fleet-wide verdict: every antenna, plus rollup counts."""

    generated_unix: float
    antennas: Tuple[AntennaHealth, ...]
    counts: Dict[str, int] = field(default_factory=dict)

    def stale(self) -> Tuple[str, ...]:
        """Antennas needing recalibration (stale or uncalibrated)."""
        return tuple(
            health.antenna
            for health in self.antennas
            if health.status in ("stale", "uncalibrated")
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view for ``/statz`` and the CLI."""
        return {
            "generated_unix": self.generated_unix,
            "counts": dict(self.counts),
            "stale": list(self.stale()),
            "antennas": [health.to_dict() for health in self.antennas],
        }


class DriftMonitor:
    """Folds drift alarms and record budgets into per-antenna health.

    Thread-safe: alarms arrive from stream session threads, evaluation
    happens on scheduler or serving threads.

    Args:
        store: the registry whose records are judged.
        policy: the staleness budgets.
        clock: injectable wall clock (tests); defaults to ``time.time``.
    """

    def __init__(
        self,
        store: CalibrationStore,
        policy: Optional[StalenessPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.store = store
        self.policy = policy if policy is not None else StalenessPolicy()
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._alarms: Dict[str, Deque[float]] = {}

    # -- alarm ingestion --------------------------------------------------

    def observe_alarm(
        self, antenna: str, drift_m: float = 0.0, timestamp: Optional[float] = None
    ) -> None:
        """Record one drift alarm against ``antenna`` (wall-clock time)."""
        stamp = float(self._clock()) if timestamp is None else float(timestamp)
        with self._lock:
            window = self._alarms.setdefault(antenna, deque())
            window.append(stamp)
            self._prune(window, stamp)

    def on_event(self, event: Any) -> None:
        """Structural event sink for stream buses and session callbacks.

        Accepts any object carrying ``kind`` and ``antenna`` attributes;
        non-drift kinds and events without an antenna label are ignored,
        so the sink is safe to subscribe unfiltered.
        """
        if getattr(event, "kind", None) != DRIFT_ALARM_KIND:
            return
        antenna = getattr(event, "antenna", None)
        if not antenna:
            return
        self.observe_alarm(str(antenna), float(getattr(event, "drift_m", 0.0)))

    def attach(self, bus: _SubscribableBus) -> int:
        """Subscribe to a stream event bus, filtered to drift alarms.

        Returns the bus's subscription token (for unsubscribe).
        """
        return bus.subscribe(self.on_event, kinds=(DRIFT_ALARM_KIND,))

    def alarm_count(self, antenna: str, now: Optional[float] = None) -> int:
        """Alarms inside the sliding window, as of ``now``."""
        stamp = float(self._clock()) if now is None else float(now)
        with self._lock:
            window = self._alarms.get(antenna)
            if not window:
                return 0
            self._prune(window, stamp)
            return len(window)

    def _prune(self, window: Deque[float], now: float) -> None:
        horizon = now - self.policy.alarm_window_s
        while window and window[0] < horizon:
            window.popleft()

    # -- evaluation -------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> FleetHealth:
        """Judge every antenna in the store against the policy."""
        stamp = float(self._clock()) if now is None else float(now)
        policy = self.policy
        verdicts: List[AntennaHealth] = []
        for name in self.store.antennas():
            record = self.store.latest(name)
            age = record.age_s(stamp)
            alarms = self.alarm_count(name, now=stamp)
            reasons: List[str] = []
            if age > policy.max_age_s:
                reasons.append(f"age {age:.0f}s exceeds budget {policy.max_age_s:.0f}s")
            if alarms >= policy.max_drift_alarms:
                reasons.append(
                    f"{alarms} drift alarms in {policy.alarm_window_s:.0f}s window"
                )
            if (
                policy.max_residual_rms_m is not None
                and record.residual_rms_m is not None
                and record.residual_rms_m > policy.max_residual_rms_m
            ):
                reasons.append(
                    f"residual {record.residual_rms_m:.4f}m exceeds budget "
                    f"{policy.max_residual_rms_m:.4f}m"
                )
            if reasons:
                status = "stale"
            elif age > policy.aging_fraction * policy.max_age_s:
                status = "aging"
            else:
                status = "fresh"
            verdicts.append(
                AntennaHealth(
                    antenna=name,
                    status=status,
                    reasons=tuple(reasons),
                    version=record.version,
                    age_s=age,
                    alarms=alarms,
                )
            )
        counts: Dict[str, int] = {}
        for health in verdicts:
            counts[health.status] = counts.get(health.status, 0) + 1
        return FleetHealth(
            generated_unix=stamp, antennas=tuple(verdicts), counts=counts
        )
