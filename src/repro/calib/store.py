"""Append-only, versioned per-antenna calibration store.

Durability model: one JSON-lines file per antenna under
``<root>/antennas/`` (versions ascending, one
:meth:`~repro.calib.records.CalibrationRecord.to_dict` per line) plus a
``meta.json`` carrying the store-wide commit generation. Every write
goes through a temp file and ``os.replace`` so a crash leaves either the
old file or the new file, never a torn one. All reads are served from an
in-memory index loaded once at open; the disk is only touched on commit.

Concurrency model: one writer process, many reader threads. A process
holds the store open and serializes commits under an internal lock;
compare-and-swap versioning (``expected_version``) turns lost races —
two schedulers recalibrating the same antenna, an operator POST landing
mid-cycle — into explicit :class:`~repro.calib.errors.VersionConflictError`
instead of silent overwrites. The store-wide ``generation`` counter
increments on every commit; caches keyed on it (the serve-side
:class:`~repro.calib.resolver.CalibrationResolver`) invalidate without
watching individual antennas.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calib.errors import (
    CorruptRecordError,
    UnknownAntennaError,
    VersionConflictError,
)
from repro.calib.records import CalibrationRecord
from repro.core.calibration import AntennaCalibration, relative_phase_offsets

#: On-disk format version, bumped on incompatible layout changes.
FORMAT_VERSION = 1

_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _safe_filename(antenna: str) -> str:
    """Filesystem-safe encoding of an antenna name (reversible enough:
    the real name lives inside every record; the filename is only a
    bucket key)."""
    encoded = "".join(
        ch if ch in _SAFE_CHARS else f"%{ord(ch):02x}" for ch in antenna
    )
    return f"{encoded}.jsonl"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class CalibrationStore:
    """The fleet calibration registry; see module docstring for layout.

    Args:
        root: store directory; created when ``create`` is true.
        create: create the directory tree and ``meta.json`` if absent.
        clock: injectable wall clock (tests); defaults to ``time.time``.

    Raises:
        FileNotFoundError: ``create=False`` and the store does not exist.
        CorruptRecordError: a persisted record or the meta file fails to
            parse or validate on load.
    """

    def __init__(
        self,
        root: str | Path,
        create: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._root = Path(root)
        self._antennas_dir = self._root / "antennas"
        self._meta_path = self._root / "meta.json"
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        self._lock = threading.RLock()
        self._index: Dict[str, List[CalibrationRecord]] = {}
        self._generation = 0
        self._meta_extra: Dict[str, Any] = {}
        self._listeners: Dict[int, Callable[[CalibrationRecord], None]] = {}
        self._next_token = 0
        if not self._meta_path.exists():
            if not create:
                raise FileNotFoundError(f"no calibration store at {self._root}")
            self._antennas_dir.mkdir(parents=True, exist_ok=True)
            self._write_meta()
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        try:
            meta = json.loads(self._meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptRecordError(f"unreadable store meta: {exc}") from exc
        if meta.get("format") != FORMAT_VERSION:
            raise CorruptRecordError(
                f"unsupported store format {meta.get('format')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        self._generation = int(meta.get("generation", 0))
        self._meta_extra = {
            key: value
            for key, value in meta.items()
            if key not in ("format", "generation")
        }
        self._index = {}
        if not self._antennas_dir.exists():
            return
        for path in sorted(self._antennas_dir.glob("*.jsonl")):
            records: List[CalibrationRecord] = []
            for line_no, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                except ValueError as exc:
                    raise CorruptRecordError(
                        f"{path.name}:{line_no}: invalid JSON: {exc}"
                    ) from exc
                records.append(CalibrationRecord.from_dict(payload))
            if not records:
                continue
            expected = list(range(1, len(records) + 1))
            if [record.version for record in records] != expected:
                raise CorruptRecordError(
                    f"{path.name}: versions must be contiguous from 1, "
                    f"got {[record.version for record in records]}"
                )
            names = {record.antenna for record in records}
            if len(names) != 1:
                raise CorruptRecordError(f"{path.name}: mixed antenna names {names}")
            self._index[records[0].antenna] = records

    # -- meta -------------------------------------------------------------

    def _write_meta(self) -> None:
        payload = {
            "format": FORMAT_VERSION,
            "generation": self._generation,
            **self._meta_extra,
        }
        _atomic_write(self._meta_path, json.dumps(payload, indent=2) + "\n")

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    @property
    def generation(self) -> int:
        """Store-wide commit counter; increments on every commit."""
        with self._lock:
            return self._generation

    def meta_get(self, key: str, default: Any = None) -> Any:
        """Read an auxiliary meta entry (e.g. the CLI's fleet-sim state)."""
        with self._lock:
            return self._meta_extra.get(key, default)

    def meta_set(self, key: str, value: Any) -> None:
        """Persist an auxiliary JSON-safe meta entry atomically."""
        with self._lock:
            self._meta_extra[key] = value
            self._write_meta()

    # -- reads ------------------------------------------------------------

    def antennas(self) -> Tuple[str, ...]:
        """All antenna names with at least one record, sorted."""
        with self._lock:
            return tuple(sorted(self._index))

    def latest_version(self, antenna: str) -> int:
        """Current version of ``antenna``; 0 when it has no records."""
        with self._lock:
            records = self._index.get(antenna)
            return records[-1].version if records else 0

    def latest(self, antenna: str) -> CalibrationRecord:
        """The newest record for ``antenna``.

        Raises:
            UnknownAntennaError: no records for that antenna.
        """
        with self._lock:
            records = self._index.get(antenna)
            if not records:
                raise UnknownAntennaError(antenna)
            return records[-1]

    def get(self, antenna: str, version: int) -> CalibrationRecord:
        """A specific committed version.

        Raises:
            UnknownAntennaError: no records for that antenna.
            KeyError: the antenna exists but not that version.
        """
        with self._lock:
            records = self._index.get(antenna)
            if not records:
                raise UnknownAntennaError(antenna)
            if not 1 <= version <= len(records):
                raise KeyError(
                    f"antenna {antenna!r} has versions 1..{len(records)}, "
                    f"requested {version}"
                )
            return records[version - 1]

    def history(self, antenna: str) -> Tuple[CalibrationRecord, ...]:
        """All committed versions of ``antenna``, oldest first.

        Raises:
            UnknownAntennaError: no records for that antenna.
        """
        with self._lock:
            records = self._index.get(antenna)
            if not records:
                raise UnknownAntennaError(antenna)
            return tuple(records)

    # -- commit -----------------------------------------------------------

    def commit(
        self,
        calibration: AntennaCalibration,
        *,
        source: str = "scan",
        reads: Optional[int] = None,
        residual_rms_m: Optional[float] = None,
        config_hash: Optional[str] = None,
        manifest: Optional[Mapping[str, Any]] = None,
        expected_version: Optional[int] = None,
    ) -> CalibrationRecord:
        """Append a new calibration version for one antenna.

        The store assigns ``version = latest + 1``. With
        ``expected_version`` given, the commit succeeds only if it equals
        the current latest (0 for a first commit) — the compare-and-swap
        that serializes racing recalibrations.

        Returns:
            The committed record (with its assigned version).

        Raises:
            VersionConflictError: the CAS check failed.
        """
        with self._lock:
            current = self.latest_version(calibration.antenna_name)
            if expected_version is not None and expected_version != current:
                raise VersionConflictError(
                    calibration.antenna_name, expected_version, current
                )
            record = CalibrationRecord.from_calibration(
                calibration,
                version=current + 1,
                created_unix=float(self._clock()),
                source=source,
                reads=reads,
                residual_rms_m=residual_rms_m,
                config_hash=config_hash,
                manifest=manifest,
            )
            return self._commit_record(record)

    def commit_record(
        self,
        record: CalibrationRecord,
        *,
        expected_version: Optional[int] = None,
    ) -> CalibrationRecord:
        """Commit a fully-formed record, restamping its version.

        The HTTP surface uses this: the wire payload parses into a
        record, the store assigns the authoritative version and commit
        time.

        Raises:
            VersionConflictError: the CAS check failed.
        """
        with self._lock:
            current = self.latest_version(record.antenna)
            if expected_version is not None and expected_version != current:
                raise VersionConflictError(record.antenna, expected_version, current)
            return self._commit_record(record.with_version(current + 1))

    def _commit_record(self, record: CalibrationRecord) -> CalibrationRecord:
        """Append ``record`` (version already assigned) under the lock."""
        records = self._index.get(record.antenna, [])
        lines = [json.dumps(item.to_dict()) for item in records]
        lines.append(json.dumps(record.to_dict()))
        self._antennas_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self._antennas_dir / _safe_filename(record.antenna),
            "\n".join(lines) + "\n",
        )
        self._index[record.antenna] = records + [record]
        self._generation += 1
        self._write_meta()
        listeners = list(self._listeners.values())
        for callback in listeners:
            callback(record)
        return record

    # -- commit listeners -------------------------------------------------

    def subscribe(self, callback: Callable[[CalibrationRecord], None]) -> int:
        """Register a post-commit callback; returns an unsubscribe token.

        Callbacks fire synchronously on the committing thread, after the
        record is durable and the generation has advanced.
        """
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._listeners[token] = callback
            return token

    def unsubscribe(self, token: int) -> None:
        """Remove a previously registered commit callback."""
        with self._lock:
            self._listeners.pop(token, None)

    # -- fleet views ------------------------------------------------------

    def records_for(
        self,
        antennas: Sequence[str],
        versions: Optional[Mapping[str, int]] = None,
    ) -> Tuple[CalibrationRecord, ...]:
        """Latest (or pinned-version) records for an ordered antenna list.

        Raises:
            UnknownAntennaError: any antenna without records.
        """
        pins = dict(versions or {})
        with self._lock:
            return tuple(
                self.get(name, pins[name]) if name in pins else self.latest(name)
                for name in antennas
            )

    def offsets_for(
        self,
        antennas: Sequence[str],
        reference_index: int = 0,
        versions: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Relative phase offsets (reference antenna cancelled), ordered.

        Exactly :func:`repro.core.calibration.relative_phase_offsets`
        over the stored calibrations — what
        ``lion-multiantenna``'s ``offset_corrections_rad`` consumes.
        """
        records = self.records_for(antennas, versions=versions)
        calibrations = [record.to_calibration() for record in records]
        relative = relative_phase_offsets(calibrations, reference_index=reference_index)
        return np.asarray([relative[name] for name in antennas], dtype=float)

    def centers_for(
        self,
        antennas: Sequence[str],
        dim: int = 3,
        versions: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Calibrated phase centers, shape ``(n, dim)``, ordered."""
        if dim not in (2, 3):
            raise ValueError(f"dim must be 2 or 3, got {dim}")
        records = self.records_for(antennas, versions=versions)
        centers = np.asarray(
            [record.estimated_center for record in records], dtype=float
        )
        return centers[:, :dim]

    def fleet_status(
        self,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """JSON-safe fleet summary for ``/statz`` and ``lion calib status``.

        With ``max_age_s`` given, antennas whose latest record is older
        are counted (and listed) as stale-by-age; drift-alarm staleness
        is the :class:`~repro.calib.staleness.DriftMonitor`'s job.
        """
        timestamp = float(self._clock()) if now is None else float(now)
        with self._lock:
            latest = {name: records[-1] for name, records in self._index.items()}
            generation = self._generation
        stale = [
            name
            for name, record in sorted(latest.items())
            if max_age_s is not None and record.age_s(timestamp) > max_age_s
        ]
        return {
            "generation": generation,
            "antennas": len(latest),
            "versions_total": sum(record.version for record in latest.values()),
            "stale_by_age": stale,
            "latest": {
                name: record.summary(now=timestamp)
                for name, record in sorted(latest.items())
            },
        }
