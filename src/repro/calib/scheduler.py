"""Recalibration scheduling: fan calibration scans out, commit versions in.

One recalibration cycle is embarrassingly parallel physics followed by
strictly serialized bookkeeping: each stale antenna's known-trajectory
scan runs through :func:`repro.core.calibration.calibrate_antenna`
independently (fanned across a :mod:`repro.parallel` executor —
``process`` for real fleets, ``serial`` for tests), and the resulting
calibrations commit back into the :class:`CalibrationStore` one by one
under compare-and-swap. The CAS token is captured *before* the fan-out:
if anything else commits to an antenna while its solve is in flight,
that solve's commit loses cleanly (reported as a conflict) instead of
overwriting fresher work — calibrations are only transactional against
the version they set out to replace.

The work function is a module-level callable over plain arrays so the
process backend can pickle it; results are bit-identical across
backends because each solve is a pure function of its task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calib.errors import VersionConflictError
from repro.calib.records import CalibrationRecord
from repro.calib.staleness import DriftMonitor
from repro.calib.store import CalibrationStore
from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.adaptive import ParameterGrid
from repro.core.calibration import AntennaCalibration, calibrate_antenna
from repro.obs import get_registry, metrics_enabled, span


@dataclass(frozen=True)
class CalibrationTask:
    """One antenna's recalibration work order (picklable, pure data).

    Attributes:
        antenna: antenna identifier.
        positions: scan tag positions, shape ``(n, 3)``.
        phases_rad: wrapped phases, shape ``(n,)``.
        physical_center: the antenna's measured center.
        segment_ids / exclude_mask: scan structure, as for
            :func:`calibrate_antenna`.
        grid: adaptive sweep grid (center it on the antenna's portal).
        wavelength_m: carrier wavelength.
        expected_version: CAS token — the store version this solve
            intends to replace (captured at scheduling time).
    """

    antenna: str
    positions: np.ndarray
    phases_rad: np.ndarray
    physical_center: np.ndarray
    segment_ids: Optional[np.ndarray] = None
    exclude_mask: Optional[np.ndarray] = None
    grid: Optional[ParameterGrid] = None
    wavelength_m: float = DEFAULT_WAVELENGTH_M
    expected_version: int = 0


@dataclass(frozen=True)
class CalibrationOutcome:
    """One solved task, pre-commit (crosses the process boundary)."""

    antenna: str
    calibration: AntennaCalibration
    residual_rms_m: float
    reads: int
    expected_version: int


def solve_calibration_task(task: CalibrationTask) -> CalibrationOutcome:
    """Run one antenna's full calibration; the executor work function.

    Pure: identical tasks produce bit-identical calibrations on any
    backend, which is what makes the fan-out safely retryable.
    """
    calibration, adaptive = calibrate_antenna(
        task.positions,
        task.phases_rad,
        task.physical_center,
        antenna_name=task.antenna,
        segment_ids=task.segment_ids,
        exclude_mask=task.exclude_mask,
        grid=task.grid,
        wavelength_m=task.wavelength_m,
    )
    best = adaptive.best_outcome
    residual = float(best.mean_abs_residual)
    return CalibrationOutcome(
        antenna=task.antenna,
        calibration=calibration,
        residual_rms_m=residual,
        reads=int(task.phases_rad.shape[0]),
        expected_version=task.expected_version,
    )


@dataclass(frozen=True)
class RecalibrationReport:
    """What one scheduler cycle did.

    Attributes:
        committed: antenna -> newly committed version.
        conflicts: antennas whose CAS commit lost a race.
        failures: antenna -> error string for solves that raised.
        duration_s: wall-clock time of the cycle.
        antennas_per_sec: committed-antenna throughput.
    """

    committed: Dict[str, int] = field(default_factory=dict)
    conflicts: Tuple[str, ...] = ()
    failures: Dict[str, str] = field(default_factory=dict)
    duration_s: float = 0.0
    antennas_per_sec: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe view for the CLI and CI smoke logs."""
        return {
            "committed": dict(self.committed),
            "conflicts": list(self.conflicts),
            "failures": dict(self.failures),
            "duration_s": round(self.duration_s, 6),
            "antennas_per_sec": round(self.antennas_per_sec, 3),
        }


#: Signature a scan source must satisfy: given an antenna name, return
#: the arrays of a fresh known-trajectory calibration scan as a
#: :class:`CalibrationTask` *without* a CAS token (the scheduler stamps
#: it). ``repro.datasets.fleet.AntennaFleet`` adapts to this via
#: :func:`fleet_scan_source`.
ScanSource = Callable[[str], CalibrationTask]


class RecalibrationScheduler:
    """Fans calibration solves out and commits versions transactionally.

    Args:
        store: the registry new versions commit into.
        scan_source: produces a fresh calibration task per antenna.
        executor: :mod:`repro.parallel` backend name (or instance).
        jobs: worker count for pool backends.
        source: record-source label stamped on committed versions.
        manifest: optional provenance dict stamped on committed versions.
    """

    def __init__(
        self,
        store: CalibrationStore,
        scan_source: ScanSource,
        executor: str = "process",
        jobs: Optional[int] = None,
        source: str = "scheduled",
        manifest: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.store = store
        self.scan_source = scan_source
        self.executor = executor
        self.jobs = jobs
        self.source = source
        self.manifest = dict(manifest) if manifest is not None else None

    def build_tasks(self, antennas: Sequence[str]) -> List[CalibrationTask]:
        """Scan every antenna and stamp CAS tokens at current versions."""
        tasks: List[CalibrationTask] = []
        for name in antennas:
            task = self.scan_source(name)
            tasks.append(
                CalibrationTask(
                    antenna=task.antenna,
                    positions=task.positions,
                    phases_rad=task.phases_rad,
                    physical_center=task.physical_center,
                    segment_ids=task.segment_ids,
                    exclude_mask=task.exclude_mask,
                    grid=task.grid,
                    wavelength_m=task.wavelength_m,
                    expected_version=self.store.latest_version(name),
                )
            )
        return tasks

    def recalibrate(self, antennas: Sequence[str]) -> RecalibrationReport:
        """One full cycle: scan, fan solves out, commit under CAS."""
        from repro.parallel import get_executor

        started = time.perf_counter()
        with span("calib.recalibrate", antennas=len(antennas), executor=self.executor):
            tasks = self.build_tasks(antennas)
            runner = get_executor(self.executor, jobs=self.jobs)
            results = runner.map_catching(solve_calibration_task, tasks)
            committed: Dict[str, int] = {}
            conflicts: List[str] = []
            failures: Dict[str, str] = {}
            for task, (ok, value) in zip(tasks, results):
                if not ok:
                    failures[task.antenna] = f"{type(value).__name__}: {value}"
                    continue
                outcome: CalibrationOutcome = value
                try:
                    record = self.store.commit(
                        outcome.calibration,
                        source=self.source,
                        reads=outcome.reads,
                        residual_rms_m=outcome.residual_rms_m,
                        manifest=self.manifest,
                        expected_version=outcome.expected_version,
                    )
                except VersionConflictError:
                    conflicts.append(task.antenna)
                    continue
                committed[task.antenna] = record.version
        duration = time.perf_counter() - started
        report = RecalibrationReport(
            committed=committed,
            conflicts=tuple(conflicts),
            failures=failures,
            duration_s=duration,
            antennas_per_sec=len(committed) / duration if duration > 0 else 0.0,
        )
        if metrics_enabled():
            registry = get_registry()
            registry.counter("calib.recalibrations_total", result="committed").inc(
                len(committed)
            )
            registry.counter("calib.recalibrations_total", result="conflict").inc(
                len(conflicts)
            )
            registry.counter("calib.recalibrations_total", result="failed").inc(
                len(failures)
            )
            registry.histogram("calib.cycle_seconds").observe(duration)
        return report

    def run_cycle(self, monitor: DriftMonitor) -> Tuple[RecalibrationReport, List[str]]:
        """Detect-then-repair: recalibrate whatever the monitor flags.

        Returns the cycle report and the antennas that were flagged
        (empty flag list means the report is empty too).
        """
        health = monitor.evaluate()
        stale = list(health.stale())
        if not stale:
            return RecalibrationReport(), stale
        return self.recalibrate(stale), stale


def fleet_scan_source(
    fleet: Any, salt: int = 0
) -> ScanSource:
    """Adapt a :class:`repro.datasets.fleet.AntennaFleet` to a ScanSource.

    Typed structurally (any object with ``calibration_scan`` and
    ``antenna``) so the calib layer does not import the dataset layer —
    the dependency points the other way at the call site.

    Args:
        fleet: the fleet simulator.
        salt: forwarded to ``calibration_scan`` so successive cycles
            draw fresh read noise.
    """

    def scan(name: str) -> CalibrationTask:
        scan_data, grid = fleet.calibration_scan(name, salt=salt)
        return CalibrationTask(
            antenna=name,
            positions=scan_data.positions,
            phases_rad=scan_data.phases,
            physical_center=fleet.antenna(name).physical_center_array,
            segment_ids=scan_data.segment_ids,
            exclude_mask=scan_data.exclude_mask,
            grid=grid,
        )

    return scan
