"""Known scan trajectories for calibration and localization.

LION requires a tag (or antenna) moving along a *known* trajectory. The
paper uses a 2.5 m linear slide at 10 cm/s, a three-line 3D scan (Fig. 11)
for full calibration, and a turntable (Fig. 21) for circular scanning.
All trajectory types here produce ``(positions, timestamps)`` sample
arrays for the reader simulator, plus segment metadata so the signal
preprocessing can unwrap each continuous sweep independently and stitch
across sweeps.
"""

from repro.trajectory.base import Trajectory, TrajectorySamples
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.multiline import MultiLineScan, ThreeLineScan, TwoLineScan
from repro.trajectory.raster import RasterScan
from repro.trajectory.waypoints import WaypointTrajectory

__all__ = [
    "Trajectory",
    "TrajectorySamples",
    "LinearTrajectory",
    "CircularTrajectory",
    "MultiLineScan",
    "RasterScan",
    "ThreeLineScan",
    "TwoLineScan",
    "WaypointTrajectory",
]
