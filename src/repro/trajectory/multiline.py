"""Multi-line scans: the Fig. 11 three-line 3D calibration geometry.

The paper's full 3D calibration moves one tag along three parallel straight
lines ``L1``, ``L2``, ``L3``:

* all three run along the x-axis;
* ``L1`` passes through the local origin;
* ``L2`` sits ``z_o`` above ``L1`` (``L1``/``L2`` span the xz-plane);
* ``L3`` sits ``y_o`` behind ``L1`` at ``y = -y_o`` (``L1``/``L3`` span the
  xy-plane).

For every x-coordinate ``x_i`` of the sweep there are three matched
positions ``P_i1 = (x_i, 0, 0)``, ``P_i2 = (x_i, 0, z_o)``,
``P_i3 = (x_i, -y_o, 0)``, which Sec. IV-B1 pairs up axis-by-axis to build
a well-conditioned coefficient matrix.

Separate sweeps break phase continuity; the paper's fix is to *move the tag
from the end of one line to the start of the next* so the phase profile
stays continuous and unwraps as one piece. Scans here therefore include
**transit** sweeps between lines by default (traversed boustrophedon-style
to keep transits short). Transit reads carry their own segment ids —
:meth:`MultiLineScan.transit_mask` flags them so they feed unwrapping but
not the equations.

:class:`TwoLineScan` is the reduced two-line variant used in the Fig. 14(a)
study (two x-lines in the z=0 plane), which observes ``(x, y)`` directly
and recovers ``z`` from the reference distance (lower-dimension issue).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array
from repro.trajectory.base import Trajectory, TrajectorySamples
from repro.trajectory.linear import LinearTrajectory


class MultiLineScan(Trajectory):
    """Several straight sweeps traversed one after another.

    Arc length runs through the sweeps in order; each sweep gets its own
    segment id. Sweeps listed in ``transit_indices`` are connecting moves
    whose reads exist only to keep the phase profile continuous.
    """

    def __init__(
        self,
        lines: Sequence[LinearTrajectory],
        transit_indices: Sequence[int] = (),
    ) -> None:
        if not lines:
            raise ValueError("need at least one line")
        self._lines: List[LinearTrajectory] = list(lines)
        self._transits = frozenset(int(i) for i in transit_indices)
        if any(not 0 <= i < len(self._lines) for i in self._transits):
            raise ValueError("transit index out of range")
        self._lengths = np.array([line.total_length_m for line in self._lines])
        self._offsets = np.concatenate(([0.0], np.cumsum(self._lengths)))

    @property
    def lines(self) -> List[LinearTrajectory]:
        """The component sweeps, in traversal order."""
        return list(self._lines)

    @property
    def transit_segment_ids(self) -> frozenset[int]:
        """Segment ids of the connecting (non-data) sweeps."""
        return self._transits

    @property
    def data_segment_ids(self) -> tuple[int, ...]:
        """Segment ids of the data sweeps, in traversal order."""
        return tuple(i for i in range(len(self._lines)) if i not in self._transits)

    @property
    def total_length_m(self) -> float:
        return float(self._offsets[-1])

    def _locate(self, arc_length_m: float) -> tuple[int, float]:
        if not -1e-9 <= arc_length_m <= self.total_length_m + 1e-9:
            raise ValueError(
                f"arc length {arc_length_m} outside [0, {self.total_length_m}]"
            )
        clamped = float(np.clip(arc_length_m, 0.0, self.total_length_m))
        index = int(np.searchsorted(self._offsets[1:], clamped, side="left"))
        index = min(index, len(self._lines) - 1)
        return index, clamped - float(self._offsets[index])

    def position_at(self, arc_length_m: float) -> np.ndarray:
        index, local = self._locate(arc_length_m)
        return self._lines[index].position_at(local)

    def segment_id_at(self, arc_length_m: float) -> int:
        index, _ = self._locate(arc_length_m)
        return index

    def transit_mask(self, samples: TrajectorySamples) -> np.ndarray:
        """Boolean mask over ``samples`` marking reads taken during transits."""
        mask = np.zeros(len(samples), dtype=bool)
        for transit in self._transits:
            mask |= samples.segment_ids == transit
        return mask


def _chain_with_transits(
    data_lines: Sequence[LinearTrajectory],
) -> tuple[List[LinearTrajectory], List[int]]:
    """Insert connecting sweeps between consecutive data lines."""
    chained: List[LinearTrajectory] = []
    transit_indices: List[int] = []
    for index, line in enumerate(data_lines):
        if index > 0:
            previous_end = chained[-1].end
            if not np.allclose(previous_end, line.start):
                chained.append(LinearTrajectory(previous_end, line.start))
                transit_indices.append(len(chained) - 1)
        chained.append(line)
    return chained, transit_indices


class ThreeLineScan(MultiLineScan):
    """The Fig. 11 calibration scan: lines L1, L2, L3 plus transits.

    Traversal is boustrophedon: L1 forward, short hop up to L2, L2
    backward, hop down-and-back to L3, L3 forward. Use
    :attr:`data_segment_ids` (ordered L1, L2, L3) to address the lines
    and :meth:`transit_mask` to drop transit reads from the equations.

    Args:
        x_start, x_end: sweep extent along the x-axis, meters.
        y_offset: spacing ``y_o`` between L1 and L3 (L3 at ``y = -y_o``).
        z_offset: spacing ``z_o`` between L1 and L2 (L2 at ``z = +z_o``).
        origin: world position of L1's local origin.
        include_transits: when False, omit connecting sweeps (the caller
            must then stitch per-line phase profiles explicitly).

    Raises:
        ValueError: for a zero-length sweep or non-positive offsets.
    """

    def __init__(
        self,
        x_start: float = -0.5,
        x_end: float = 0.5,
        y_offset: float = 0.2,
        z_offset: float = 0.2,
        origin: ArrayLike = (0.0, 0.0, 0.0),
        include_transits: bool = True,
    ) -> None:
        if x_end == x_start:
            raise ValueError("sweep must have non-zero x extent")
        if y_offset <= 0.0 or z_offset <= 0.0:
            raise ValueError("line offsets must be positive")
        base = as_point_array(origin, dim=3)
        self.y_offset = float(y_offset)
        self.z_offset = float(z_offset)
        self.x_start = float(x_start)
        self.x_end = float(x_end)
        line1 = LinearTrajectory(base + [x_start, 0.0, 0.0], base + [x_end, 0.0, 0.0])
        # L2 is traversed backward so the transit from L1's end is short.
        line2 = LinearTrajectory(
            base + [x_end, 0.0, z_offset], base + [x_start, 0.0, z_offset]
        )
        line3 = LinearTrajectory(
            base + [x_start, -y_offset, 0.0], base + [x_end, -y_offset, 0.0]
        )
        if include_transits:
            chained, transit_indices = _chain_with_transits([line1, line2, line3])
            super().__init__(chained, transit_indices)
        else:
            super().__init__([line1, line2, line3])

    @property
    def line1(self) -> LinearTrajectory:
        """The reference line L1 (through the local origin)."""
        return self._lines[self.data_segment_ids[0]]

    @property
    def line2(self) -> LinearTrajectory:
        """L2, displaced by ``z_offset`` along +z."""
        return self._lines[self.data_segment_ids[1]]

    @property
    def line3(self) -> LinearTrajectory:
        """L3, displaced by ``y_offset`` along -y."""
        return self._lines[self.data_segment_ids[2]]

    def line_ids_for_pairing(self) -> tuple[int, int, int]:
        """Segment ids in the (L1, L2, L3) order expected by
        :func:`repro.core.pairing.three_line_pairs`."""
        ids = self.data_segment_ids
        return ids[0], ids[1], ids[2]


class TwoLineScan(MultiLineScan):
    """Two parallel x-lines in the z=0 plane (Fig. 14(a) geometry).

    Args:
        x_start, x_end: sweep extent along the x-axis, meters.
        y_offset: spacing between the two lines; the second line runs at
            ``y = -y_offset``.
        origin: world position of the first line's local origin.
        include_transits: include the connecting sweep (default True).
    """

    def __init__(
        self,
        x_start: float = -0.5,
        x_end: float = 0.5,
        y_offset: float = 0.2,
        origin: ArrayLike = (0.0, 0.0, 0.0),
        include_transits: bool = True,
    ) -> None:
        if x_end == x_start:
            raise ValueError("sweep must have non-zero x extent")
        if y_offset <= 0.0:
            raise ValueError("line offset must be positive")
        base = as_point_array(origin, dim=3)
        self.y_offset = float(y_offset)
        self.x_start = float(x_start)
        self.x_end = float(x_end)
        line1 = LinearTrajectory(base + [x_start, 0.0, 0.0], base + [x_end, 0.0, 0.0])
        # Traversed backward after a short hop to -y_offset.
        line2 = LinearTrajectory(
            base + [x_end, -y_offset, 0.0], base + [x_start, -y_offset, 0.0]
        )
        if include_transits:
            chained, transit_indices = _chain_with_transits([line1, line2])
            super().__init__(chained, transit_indices)
        else:
            super().__init__([line1, line2])

    @property
    def line1(self) -> LinearTrajectory:
        """The reference line at y = 0."""
        return self._lines[self.data_segment_ids[0]]

    @property
    def line2(self) -> LinearTrajectory:
        """The displaced line at ``y = -y_offset``."""
        return self._lines[self.data_segment_ids[1]]
