"""Circular trajectory — the turntable scan of Fig. 21 and Sec. III-A."""

from __future__ import annotations

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array
from repro.geometry.transforms import orthonormal_basis_for_plane
from repro.trajectory.base import Trajectory


class CircularTrajectory(Trajectory):
    """Constant-speed motion around a circle.

    Args:
        center: circle center, meters.
        radius: circle radius, meters (positive).
        normal: normal of the circle's plane; defaults to +z (a turntable
            lying in the xy-plane).
        start_angle_rad: angular position of the first sample, measured in
            the circle plane from the first basis vector.
        turns: how many full revolutions the scan covers (fractions allowed).

    Raises:
        ValueError: on non-positive radius or turns.
    """

    def __init__(
        self,
        center: ArrayLike,
        radius: float,
        normal: ArrayLike = (0.0, 0.0, 1.0),
        start_angle_rad: float = 0.0,
        turns: float = 1.0,
    ) -> None:
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        if turns <= 0.0:
            raise ValueError(f"turns must be positive, got {turns}")
        self._center = as_point_array(center, dim=3)
        self._radius = float(radius)
        self._u, self._v = orthonormal_basis_for_plane(normal)
        self._start_angle = float(start_angle_rad)
        self._turns = float(turns)

    @property
    def center(self) -> np.ndarray:
        """Circle center, shape ``(3,)``."""
        return self._center.copy()

    @property
    def radius(self) -> float:
        """Circle radius, meters."""
        return self._radius

    @property
    def total_length_m(self) -> float:
        return 2.0 * np.pi * self._radius * self._turns

    def position_at(self, arc_length_m: float) -> np.ndarray:
        if not -1e-9 <= arc_length_m <= self.total_length_m + 1e-9:
            raise ValueError(
                f"arc length {arc_length_m} outside [0, {self.total_length_m}]"
            )
        angle = self._start_angle + arc_length_m / self._radius
        return (
            self._center
            + self._radius * np.cos(angle) * self._u
            + self._radius * np.sin(angle) * self._v
        )

    def segment_id_at(self, arc_length_m: float) -> int:
        return 0
