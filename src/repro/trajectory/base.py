"""Trajectory interface and the sample container.

A trajectory is, for our purposes, a mapping from arc length to position
plus a way to sample it at constant speed and read rate. Samples carry
segment indices: each segment is one *continuous* sweep, inside which
consecutive reads are close enough for phase unwrapping, while phase
continuity *across* segments must be restored by stitching
(:func:`repro.signalproc.unwrap.stitch_profiles`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_READ_RATE_HZ, DEFAULT_TAG_SPEED_MPS


@dataclass(frozen=True)
class TrajectorySamples:
    """Sampled trajectory: positions, timestamps and segment structure.

    Attributes:
        positions: array of shape ``(n, 3)``, meters.
        timestamps_s: array of shape ``(n,)``, seconds from scan start.
        segment_ids: array of shape ``(n,)`` of ints; reads sharing an id
            belong to one continuous sweep.
    """

    positions: np.ndarray
    timestamps_s: np.ndarray
    segment_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        n = self.positions.shape[0]
        if self.timestamps_s.shape != (n,) or self.segment_ids.shape != (n,):
            raise ValueError("timestamps and segment ids must match positions length")

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def segment_count(self) -> int:
        """Number of distinct continuous sweeps."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.segment_ids).size)

    def segment(self, segment_id: int) -> "TrajectorySamples":
        """Extract one continuous sweep as its own sample set."""
        mask = self.segment_ids == segment_id
        if not np.any(mask):
            raise KeyError(f"no samples with segment id {segment_id}")
        return TrajectorySamples(
            positions=self.positions[mask],
            timestamps_s=self.timestamps_s[mask],
            segment_ids=self.segment_ids[mask],
        )

    def restricted_to_range(self, axis: int, center: float, width: float) -> "TrajectorySamples":
        """Keep samples whose ``axis`` coordinate lies within ``center +/- width/2``.

        Implements the paper's *scanning range* knob (Sec. V-E): the tag
        physically moves 2.5 m but only reads inside the selected window
        feed the model.
        """
        if width <= 0.0:
            raise ValueError("range width must be positive")
        coordinate = self.positions[:, axis]
        mask = np.abs(coordinate - center) <= width / 2.0
        return TrajectorySamples(
            positions=self.positions[mask],
            timestamps_s=self.timestamps_s[mask],
            segment_ids=self.segment_ids[mask],
        )


class Trajectory(abc.ABC):
    """Abstract constant-speed scan path."""

    @property
    @abc.abstractmethod
    def total_length_m(self) -> float:
        """Total arc length of the scan, meters."""

    @abc.abstractmethod
    def position_at(self, arc_length_m: float) -> np.ndarray:
        """Position (shape ``(3,)``) after traveling ``arc_length_m`` meters.

        Raises:
            ValueError: if ``arc_length_m`` is outside ``[0, total_length_m]``.
        """

    @abc.abstractmethod
    def segment_id_at(self, arc_length_m: float) -> int:
        """Continuous-sweep id at the given arc length."""

    def sample(
        self,
        speed_mps: float = DEFAULT_TAG_SPEED_MPS,
        read_rate_hz: float = DEFAULT_READ_RATE_HZ,
    ) -> TrajectorySamples:
        """Sample the trajectory at constant speed and fixed read rate.

        Raises:
            ValueError: on non-positive speed or rate.
        """
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps}")
        if read_rate_hz <= 0.0:
            raise ValueError(f"read rate must be positive, got {read_rate_hz}")
        duration = self.total_length_m / speed_mps
        count = max(int(np.floor(duration * read_rate_hz)) + 1, 2)
        timestamps = np.linspace(0.0, duration, count)
        arcs = timestamps * speed_mps
        # Guard the final sample against floating-point overshoot.
        arcs[-1] = min(arcs[-1], self.total_length_m)
        positions = np.vstack([self.position_at(s) for s in arcs])
        segments = np.array([self.segment_id_at(s) for s in arcs], dtype=int)
        return TrajectorySamples(positions=positions, timestamps_s=timestamps, segment_ids=segments)
