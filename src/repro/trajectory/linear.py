"""Straight-line trajectory — the paper's 2.5 m sliding track."""

from __future__ import annotations

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array
from repro.trajectory.base import Trajectory


class LinearTrajectory(Trajectory):
    """Constant-speed motion from ``start`` to ``end``.

    The default evaluation geometry has the track along the x-axis at the
    antenna's height; construct e.g.
    ``LinearTrajectory((-1.25, 0, 0), (1.25, 0, 0))`` for the full slide.
    """

    def __init__(self, start: ArrayLike, end: ArrayLike) -> None:
        self._start = as_point_array(start, dim=3)
        self._end = as_point_array(end, dim=3)
        self._vector = self._end - self._start
        self._length = float(np.linalg.norm(self._vector))
        if self._length == 0.0:
            raise ValueError("start and end of a linear trajectory must differ")
        self._direction = self._vector / self._length

    @property
    def start(self) -> np.ndarray:
        """Start point, shape ``(3,)``."""
        return self._start.copy()

    @property
    def end(self) -> np.ndarray:
        """End point, shape ``(3,)``."""
        return self._end.copy()

    @property
    def direction(self) -> np.ndarray:
        """Unit direction of travel."""
        return self._direction.copy()

    @property
    def total_length_m(self) -> float:
        return self._length

    def position_at(self, arc_length_m: float) -> np.ndarray:
        if not -1e-9 <= arc_length_m <= self._length + 1e-9:
            raise ValueError(
                f"arc length {arc_length_m} outside [0, {self._length}]"
            )
        clamped = float(np.clip(arc_length_m, 0.0, self._length))
        return self._start + clamped * self._direction

    def segment_id_at(self, arc_length_m: float) -> int:
        return 0
