"""Arbitrary piecewise-linear trajectory through waypoints.

LION works with *any* known trajectory (Sec. V-F2); this type lets
applications express free-form scan paths — robot arms, handheld sweeps —
as a polyline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.points import ArrayLike, as_point_matrix
from repro.trajectory.base import Trajectory


class WaypointTrajectory(Trajectory):
    """Constant-speed motion along a polyline of waypoints.

    Consecutive duplicate waypoints are rejected. The whole polyline is one
    continuous sweep (segment id 0); insert explicit breaks by building
    several trajectories if the scan pauses.

    Raises:
        ValueError: if fewer than two waypoints are given or any two
            consecutive waypoints coincide.
    """

    def __init__(self, waypoints: Sequence[ArrayLike]) -> None:
        matrix = as_point_matrix(waypoints, dim=3)
        if matrix.shape[0] < 2:
            raise ValueError("need at least two waypoints")
        steps = np.diff(matrix, axis=0)
        lengths = np.linalg.norm(steps, axis=1)
        if np.any(lengths == 0.0):
            raise ValueError("consecutive waypoints must differ")
        self._waypoints = matrix
        self._lengths = lengths
        self._offsets = np.concatenate(([0.0], np.cumsum(lengths)))

    @property
    def waypoints(self) -> np.ndarray:
        """Waypoint matrix of shape ``(k, 3)``."""
        return self._waypoints.copy()

    @property
    def total_length_m(self) -> float:
        return float(self._offsets[-1])

    def position_at(self, arc_length_m: float) -> np.ndarray:
        if not -1e-9 <= arc_length_m <= self.total_length_m + 1e-9:
            raise ValueError(
                f"arc length {arc_length_m} outside [0, {self.total_length_m}]"
            )
        clamped = float(np.clip(arc_length_m, 0.0, self.total_length_m))
        index = int(np.searchsorted(self._offsets[1:], clamped, side="left"))
        index = min(index, self._lengths.shape[0] - 1)
        local = clamped - float(self._offsets[index])
        fraction = local / float(self._lengths[index])
        return (1.0 - fraction) * self._waypoints[index] + fraction * self._waypoints[index + 1]

    def segment_id_at(self, arc_length_m: float) -> int:
        return 0
