"""Raster (serpentine) plane scan.

The Fig. 11 three-line scan is the *minimum* geometry for 3D calibration;
when scan time is cheap, sweeping a whole plane in a serpentine pattern
buys much better conditioning: every y/z combination in the plane
contributes pairs, instead of three discrete lines. The raster is
continuous (rows connected by short turns), so it unwraps as one profile
with a single phase datum — no stitching, no transit bookkeeping beyond
the built-in segment ids.

Rows run along the x-axis; consecutive rows step by ``row_spacing`` along
the plane's second axis (y by default, matching the paper's frame where
the scan plane is z = 0).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.geometry.points import ArrayLike, as_point_array
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import MultiLineScan


class RasterScan(MultiLineScan):
    """Serpentine coverage of a rectangle in a plane.

    Args:
        x_start, x_end: row extent along the x-axis, meters.
        row_axis: which axis the rows step along: ``"y"`` or ``"z"``.
        row_start: coordinate of the first row on ``row_axis``.
        row_count: number of rows (at least 2).
        row_spacing: distance between consecutive rows, meters.
        origin: world offset applied to the whole pattern.

    The connecting turns between rows are transit segments (flagged by
    :meth:`MultiLineScan.transit_mask`), although for a raster they are
    real in-plane motion and perfectly usable as data; excluding them
    merely keeps pairing row-structured.

    Raises:
        ValueError: on a degenerate extent, fewer than two rows, or a
            non-positive spacing.
    """

    def __init__(
        self,
        x_start: float = -0.5,
        x_end: float = 0.5,
        row_axis: str = "y",
        row_start: float = 0.0,
        row_count: int = 5,
        row_spacing: float = 0.1,
        origin: ArrayLike = (0.0, 0.0, 0.0),
    ) -> None:
        if x_end == x_start:
            raise ValueError("rows must have non-zero x extent")
        if row_count < 2:
            raise ValueError(f"need at least two rows, got {row_count}")
        if row_spacing <= 0.0:
            raise ValueError(f"row spacing must be positive, got {row_spacing}")
        if row_axis not in ("y", "z"):
            raise ValueError(f"row_axis must be 'y' or 'z', got {row_axis!r}")
        base = as_point_array(origin, dim=3)
        axis_index = 1 if row_axis == "y" else 2
        self.row_axis = row_axis
        self.row_count = int(row_count)
        self.row_spacing = float(row_spacing)
        self.x_start = float(x_start)
        self.x_end = float(x_end)

        rows: List[LinearTrajectory] = []
        for row in range(row_count):
            offset = np.zeros(3)
            offset[axis_index] = row_start + row * row_spacing
            left = base + offset + [x_start, 0.0, 0.0]
            right = base + offset + [x_end, 0.0, 0.0]
            # Serpentine: odd rows run right-to-left.
            rows.append(
                LinearTrajectory(left, right) if row % 2 == 0 else LinearTrajectory(right, left)
            )
        chained: List[LinearTrajectory] = []
        transit_indices: List[int] = []
        for index, row_line in enumerate(rows):
            if index > 0:
                previous_end = chained[-1].end
                chained.append(LinearTrajectory(previous_end, row_line.start))
                transit_indices.append(len(chained) - 1)
            chained.append(row_line)
        super().__init__(chained, transit_indices)

    @property
    def rows(self) -> List[LinearTrajectory]:
        """The data rows, in traversal order."""
        return [self._lines[i] for i in self.data_segment_ids]
