"""CSV persistence for read records.

The column schema mirrors what an LLRP client logs from a Speedway reader
(EPC, antenna port, timestamp, channel, phase, RSSI) plus the ground-truth
tag position that the slide/turntable encoder provides in the paper's
setup. Files written here replay byte-identically through
:func:`read_records_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence

from repro.rf.reader import ReadRecord

_COLUMNS = (
    "epc",
    "antenna",
    "timestamp_s",
    "channel_index",
    "frequency_hz",
    "phase_rad",
    "rssi_dbm",
    "tag_x_m",
    "tag_y_m",
    "tag_z_m",
)


def write_records_csv(records: Sequence[ReadRecord], path: "str | Path") -> None:
    """Write read records to ``path`` in the canonical column order.

    Raises:
        ValueError: if ``records`` is empty (an empty scan is almost
            certainly a bug upstream; write nothing rather than a
            header-only file).
    """
    if not records:
        raise ValueError("refusing to write an empty record set")
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for record in records:
            writer.writerow(
                [
                    record.epc,
                    record.antenna,
                    repr(record.timestamp_s),
                    record.channel_index,
                    repr(record.frequency_hz),
                    repr(record.phase_rad),
                    repr(record.rssi_dbm),
                    repr(record.tag_position[0]),
                    repr(record.tag_position[1]),
                    repr(record.tag_position[2]),
                ]
            )


def read_records_csv(path: "str | Path") -> List[ReadRecord]:
    """Load read records previously written by :func:`write_records_csv`.

    Raises:
        ValueError: on a missing or reordered header.
        FileNotFoundError: when the file does not exist.
    """
    source = Path(path)
    with source.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _COLUMNS:
            raise ValueError(
                f"unexpected CSV header in {source}: {header!r} (want {_COLUMNS})"
            )
        records: List[ReadRecord] = []
        for row in reader:
            if len(row) != len(_COLUMNS):
                raise ValueError(f"malformed row in {source}: {row!r}")
            records.append(
                ReadRecord(
                    epc=row[0],
                    antenna=row[1],
                    timestamp_s=float(row[2]),
                    channel_index=int(row[3]),
                    frequency_hz=float(row[4]),
                    phase_rad=float(row[5]),
                    rssi_dbm=float(row[6]),
                    tag_position=(float(row[7]), float(row[8]), float(row[9])),
                )
            )
    return records
