"""CSV persistence for read records.

The column schema mirrors what an LLRP client logs from a Speedway reader
(EPC, antenna port, timestamp, channel, phase, RSSI) plus the ground-truth
tag position that the slide/turntable encoder provides in the paper's
setup. Files written here replay byte-identically through
:func:`read_records_csv`.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.rf.reader import ReadRecord

_COLUMNS = (
    "epc",
    "antenna",
    "timestamp_s",
    "channel_index",
    "frequency_hz",
    "phase_rad",
    "rssi_dbm",
    "tag_x_m",
    "tag_y_m",
    "tag_z_m",
)


def write_records_csv(records: Sequence[ReadRecord], path: "str | Path") -> None:
    """Write read records to ``path`` in the canonical column order.

    Raises:
        ValueError: if ``records`` is empty (an empty scan is almost
            certainly a bug upstream; write nothing rather than a
            header-only file).
    """
    if not records:
        raise ValueError("refusing to write an empty record set")
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for record in records:
            writer.writerow(
                [
                    record.epc,
                    record.antenna,
                    repr(record.timestamp_s),
                    record.channel_index,
                    repr(record.frequency_hz),
                    repr(record.phase_rad),
                    repr(record.rssi_dbm),
                    repr(record.tag_position[0]),
                    repr(record.tag_position[1]),
                    repr(record.tag_position[2]),
                ]
            )


def read_records_csv(path: "str | Path") -> List[ReadRecord]:
    """Load read records previously written by :func:`write_records_csv`.

    Raises:
        ValueError: on a missing or reordered header.
        FileNotFoundError: when the file does not exist.
    """
    source = Path(path)
    with source.open("r", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _COLUMNS:
            raise ValueError(
                f"unexpected CSV header in {source}: {header!r} (want {_COLUMNS})"
            )
        records: List[ReadRecord] = []
        for row in reader:
            if len(row) != len(_COLUMNS):
                raise ValueError(f"malformed row in {source}: {row!r}")
            records.append(
                ReadRecord(
                    epc=row[0],
                    antenna=row[1],
                    timestamp_s=float(row[2]),
                    channel_index=int(row[3]),
                    frequency_hz=float(row[4]),
                    phase_rad=float(row[5]),
                    rssi_dbm=float(row[6]),
                    tag_position=(float(row[7]), float(row[8]), float(row[9])),
                )
            )
    return records


@dataclass(frozen=True)
class RecordedStream:
    """One ``(tag, antenna)`` read stream extracted from recorded data.

    The streaming-session replay unit (:mod:`repro.stream.replay`):
    timestamps preserved for wall-clock pacing, positions trimmed to the
    requested dimension, phases raw/wrapped exactly as recorded.

    Attributes:
        tag: the EPC.
        antenna: the antenna id.
        timestamps_s: read timestamps, shape ``(n,)``, time-ordered.
        positions: ground-truth tag positions, shape ``(n, dim)``.
        phases_rad: wrapped phases as recorded, shape ``(n,)``.
    """

    tag: str
    antenna: str
    timestamps_s: np.ndarray
    positions: np.ndarray
    phases_rad: np.ndarray

    def __len__(self) -> int:
        return int(self.phases_rad.shape[0])

    @property
    def duration_s(self) -> float:
        """Recorded span from first to last read."""
        if self.timestamps_s.size < 2:
            return 0.0
        return float(self.timestamps_s[-1] - self.timestamps_s[0])


def session_streams(records: Sequence[ReadRecord], dim: int = 2) -> List[RecordedStream]:
    """Split recorded reads into per-``(tag, antenna)`` session streams.

    Reads are grouped by ``(epc, antenna)`` and stably sorted by
    timestamp inside each group, which is exactly the order a live
    reader would have delivered them — so a recorded scan replays
    through :mod:`repro.stream` read-for-read.

    Args:
        records: recorded reads (e.g. from :func:`read_records_csv`).
        dim: keep the first ``dim`` position coordinates (2 or 3).

    Raises:
        ValueError: on an unsupported ``dim``.
    """
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    grouped: Dict[Tuple[str, str], List[ReadRecord]] = {}
    order: List[Tuple[str, str]] = []
    for record in records:
        key = (record.epc, record.antenna)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(record)
    streams: List[RecordedStream] = []
    for key in order:
        group = grouped[key]
        timestamps = np.array([r.timestamp_s for r in group], dtype=float)
        sorting = np.argsort(timestamps, kind="stable")
        positions = np.array([group[i].tag_position[:dim] for i in sorting], dtype=float)
        streams.append(
            RecordedStream(
                tag=key[0],
                antenna=key[1],
                timestamps_s=timestamps[sorting],
                positions=positions,
                phases_rad=np.array([group[i].phase_rad for i in sorting], dtype=float),
            )
        )
    return streams
