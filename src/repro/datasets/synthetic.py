"""One-call synthetic scan generation.

Wires trajectory sampling, the RF channel and the reader simulator into the
``(positions, phases, segments, exclude mask)`` bundle the localization
APIs consume. Every randomized quantity flows from the caller's
``numpy.random.Generator`` — no hidden global state, so every experiment
is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_PHASE_NOISE_STD_RAD,
    DEFAULT_READ_RATE_HZ,
    DEFAULT_TAG_SPEED_MPS,
    DEFAULT_WAVELENGTH_M,
)
from repro.geometry.points import ArrayLike, as_point_array
from repro.geometry.transforms import unit
from repro.rf.antenna import Antenna
from repro.rf.channel import Channel, ChannelConfig
from repro.rf.multipath import Reflector
from repro.rf.noise import GaussianPhaseNoise, PhaseNoiseModel
from repro.rf.reader import ReadRecord, Reader, ReaderConfig
from repro.rf.tag import Tag
from repro.trajectory.base import Trajectory
from repro.trajectory.multiline import MultiLineScan


@dataclass(frozen=True)
class ScanData:
    """Everything one simulated scan produced.

    Attributes:
        positions: tag positions, shape ``(n, 3)``, time order.
        phases: reported wrapped phases, shape ``(n,)``.
        timestamps_s: read times, shape ``(n,)``.
        segment_ids: per-read sweep ids, shape ``(n,)``.
        exclude_mask: True for transit reads (keep for unwrapping, drop
            from equations); all-False for single-sweep scans.
        records: the underlying LLRP-shaped read records.
        antenna: the simulated antenna (carries the hidden ground truth).
        tag: the simulated tag.
    """

    positions: np.ndarray
    phases: np.ndarray
    timestamps_s: np.ndarray
    segment_ids: np.ndarray
    exclude_mask: np.ndarray
    records: List[ReadRecord] = field(repr=False, default_factory=list)
    antenna: Antenna | None = None
    tag: Tag | None = None

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def data_positions(self) -> np.ndarray:
        """Positions of non-transit reads."""
        return self.positions[~self.exclude_mask]


def default_antenna(
    position: ArrayLike,
    rng: np.random.Generator | None = None,
    displacement_scale_m: float = 0.025,
    name: str = "antenna",
    boresight: ArrayLike | None = None,
) -> Antenna:
    """An antenna with paper-plausible hidden hardware characteristics.

    The phase-center displacement is drawn with magnitude around
    ``displacement_scale_m`` (the 2-3 cm of Fig. 2) and the phase offset
    uniformly over the circle (Fig. 3). Pass ``rng=None`` for an ideal
    antenna with no displacement and zero offset.
    """
    center = as_point_array(position, dim=3)
    if rng is None:
        displacement = np.zeros(3)
        offset = 0.0
    else:
        direction = unit(rng.normal(size=3), name="displacement direction")
        magnitude = rng.uniform(0.8, 1.2) * displacement_scale_m
        displacement = magnitude * direction
        offset = float(rng.uniform(0.0, 2.0 * np.pi))
    if boresight is None:
        # Face the origin-ish: default evaluation geometry has the antenna
        # behind the track looking along -y toward it.
        boresight = (0.0, -1.0, 0.0) if center[1] > 0 else (0.0, 1.0, 0.0)
    return Antenna(
        physical_center=tuple(center),
        center_displacement=tuple(displacement),
        phase_offset_rad=offset,
        boresight=tuple(as_point_array(boresight, dim=3)),
        name=name,
    )


def simulate_scan(
    trajectory: Trajectory,
    antenna: Antenna,
    tag: Tag | None = None,
    rng: np.random.Generator | None = None,
    noise: PhaseNoiseModel | None = None,
    reflectors: Sequence[Reflector] = (),
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    speed_mps: float = DEFAULT_TAG_SPEED_MPS,
    read_rate_hz: float = DEFAULT_READ_RATE_HZ,
    reader_config: ReaderConfig | None = None,
) -> ScanData:
    """Simulate one complete scan of ``trajectory`` seen by ``antenna``.

    Args:
        trajectory: the known scan path.
        antenna: the interrogating antenna (with its hidden phase center).
        tag: the moving tag; defaults to a random-offset tag when ``rng``
            is given, an ideal tag otherwise.
        rng: random generator; ``None`` selects a fixed seed of 0.
        noise: phase-noise model; defaults to the paper's N(0, 0.1 rad).
        reflectors: multipath image sources.
        wavelength_m: carrier wavelength.
        speed_mps / read_rate_hz: scan kinematics.
        reader_config: reader behaviour; defaults to the pinned-frequency
            paper configuration.

    Returns:
        The full :class:`ScanData` bundle.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if tag is None:
        tag = Tag.random(rng)
    if noise is None:
        noise = GaussianPhaseNoise(DEFAULT_PHASE_NOISE_STD_RAD)
    if reader_config is None:
        reader_config = ReaderConfig(read_rate_hz=read_rate_hz)

    samples = trajectory.sample(speed_mps=speed_mps, read_rate_hz=read_rate_hz)
    channel = Channel(
        antenna=antenna,
        tag=tag,
        config=ChannelConfig(
            wavelength_m=wavelength_m, noise=noise, reflectors=tuple(reflectors)
        ),
    )
    reader = Reader(config=reader_config)
    records = reader.interrogate(channel, samples.positions, samples.timestamps_s, rng)

    positions = np.array([r.tag_position for r in records], dtype=float)
    phases = np.array([r.phase_rad for r in records], dtype=float)
    timestamps = np.array([r.timestamp_s for r in records], dtype=float)

    # Dropouts may have removed reads; recompute segment ids per read.
    if len(records) == len(samples):
        segment_ids = samples.segment_ids.copy()
    else:
        kept = {float(r.timestamp_s) for r in records}
        mask = np.array([t in kept for t in samples.timestamps_s])
        segment_ids = samples.segment_ids[mask]

    if isinstance(trajectory, MultiLineScan):
        exclude = np.zeros(len(records), dtype=bool)
        for transit in trajectory.transit_segment_ids:
            exclude |= segment_ids == transit
    else:
        exclude = np.zeros(len(records), dtype=bool)

    return ScanData(
        positions=positions,
        phases=phases,
        timestamps_s=timestamps,
        segment_ids=segment_ids,
        exclude_mask=exclude,
        records=records,
        antenna=antenna,
        tag=tag,
    )


def simulate_static_reads(
    antenna: Antenna,
    tag: Tag,
    tag_position: ArrayLike,
    sample_count: int,
    rng: np.random.Generator,
    noise: PhaseNoiseModel | None = None,
    reflectors: Sequence[Reflector] = (),
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> List[ReadRecord]:
    """Reads of a static tag — the Fig. 3 offset-characterisation setup."""
    if noise is None:
        noise = GaussianPhaseNoise(DEFAULT_PHASE_NOISE_STD_RAD)
    channel = Channel(
        antenna=antenna,
        tag=tag,
        config=ChannelConfig(
            wavelength_m=wavelength_m, noise=noise, reflectors=tuple(reflectors)
        ),
    )
    reader = Reader()
    return reader.collect_static(channel, as_point_array(tag_position, dim=3), sample_count, rng)
