"""Named, canned evaluation workloads.

One-line access to the scenarios the evaluation (and any downstream
benchmark) keeps rebuilding: a named workload bundles the trajectory, the
antenna's hidden hardware truth, the channel conditions and the scan
kinematics, and `build(rng)` returns the scan plus its ground truth. The
registry gives experiments a shared vocabulary::

    scan, truth = get_workload("paper-2d-conveyor").build(rng)

Workloads are deliberately *specifications* (frozen dataclasses), so they
serialize into experiment logs and two runs with the same seed produce
identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets.synthetic import ScanData, simulate_scan
from repro.geometry.transforms import unit
from repro.rf.antenna import Antenna
from repro.rf.noise import (
    BurstyPhaseNoise,
    GaussianPhaseNoise,
    PhaseNoiseModel,
    SnrScaledPhaseNoise,
)
from repro.trajectory.base import Trajectory
from repro.trajectory.circular import CircularTrajectory
from repro.trajectory.linear import LinearTrajectory
from repro.trajectory.multiline import ThreeLineScan, TwoLineScan


@dataclass(frozen=True)
class Workload:
    """A named scan scenario.

    Attributes:
        name: registry key.
        description: one-line summary.
        trajectory_factory: builds the scan path.
        antenna_factory: builds the antenna (receives the rng so hidden
            hardware truth varies per draw while staying seed-stable).
        noise_factory: builds the phase-noise model.
        read_rate_hz / speed_mps: scan kinematics.
    """

    name: str
    description: str
    trajectory_factory: Callable[[], Trajectory]
    antenna_factory: Callable[[np.random.Generator], Antenna]
    noise_factory: Callable[[], PhaseNoiseModel]
    read_rate_hz: float = 60.0
    speed_mps: float = 0.10

    def build(self, rng: np.random.Generator) -> Tuple[ScanData, Antenna]:
        """Simulate one draw of the workload.

        Returns:
            ``(scan, antenna)`` — the antenna carries the ground truth
            (`.phase_center`, `.phase_offset_rad`).
        """
        antenna = self.antenna_factory(rng)
        scan = simulate_scan(
            self.trajectory_factory(),
            antenna,
            rng=rng,
            noise=self.noise_factory(),
            read_rate_hz=self.read_rate_hz,
            speed_mps=self.speed_mps,
        )
        return scan, antenna


def _paper_antenna(rng: np.random.Generator, depth: float = 0.8, height: float = 0.0) -> Antenna:
    direction = unit(rng.normal(size=3), name="displacement direction")
    return Antenna(
        physical_center=(0.0, depth, height),
        center_displacement=tuple(rng.uniform(0.02, 0.03) * direction),
        phase_offset_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
        boresight=(0.0, -1.0, 0.0),
    )


_REGISTRY: Dict[str, Workload] = {}


def register_workload(workload: Workload) -> None:
    """Add a workload to the registry.

    Raises:
        ValueError: on a duplicate name.
    """
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload


def get_workload(name: str) -> Workload:
    """Look a workload up by name.

    Raises:
        KeyError: with the list of known names.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def list_workloads() -> Dict[str, str]:
    """Mapping of workload name to description."""
    return {name: w.description for name, w in sorted(_REGISTRY.items())}


register_workload(
    Workload(
        name="paper-2d-conveyor",
        description="Sec. V-B 2D tracking: 1.2 m sweep at 0.8 m depth, SNR noise",
        trajectory_factory=lambda: LinearTrajectory((-0.6, 0, 0), (0.6, 0, 0)),
        antenna_factory=lambda rng: _paper_antenna(rng),
        noise_factory=lambda: SnrScaledPhaseNoise(
            base_std_rad=0.08, reference_distance_m=0.8
        ),
    )
)

register_workload(
    Workload(
        name="paper-3d-calibration",
        description="Fig. 11 three-line calibration scan with transits",
        trajectory_factory=lambda: ThreeLineScan(-0.55, 0.55),
        antenna_factory=lambda rng: _paper_antenna(rng, height=0.1),
        noise_factory=lambda: SnrScaledPhaseNoise(
            base_std_rad=0.08, reference_distance_m=0.8
        ),
    )
)

register_workload(
    Workload(
        name="paper-two-line-3d",
        description="Fig. 14(a) two-line scan: z recovered from d_r",
        trajectory_factory=lambda: TwoLineScan(-0.6, 0.6, y_offset=0.2),
        antenna_factory=lambda rng: _paper_antenna(rng, height=0.1),
        noise_factory=lambda: SnrScaledPhaseNoise(
            base_std_rad=0.08, reference_distance_m=0.8
        ),
    )
)

register_workload(
    Workload(
        name="paper-turntable",
        description="Fig. 21 rotating tag: r = 0.2 m, antenna 0.7 m ahead",
        trajectory_factory=lambda: CircularTrajectory((0, 0, 0), radius=0.2),
        antenna_factory=lambda rng: Antenna(
            physical_center=(0.0, 0.7, 0.0), boresight=(0, -1, 0)
        ),
        noise_factory=lambda: GaussianPhaseNoise(0.1),
    )
)

register_workload(
    Workload(
        name="harsh-bursty",
        description="Fig. 15 regime: SNR noise + 5% interference bursts",
        trajectory_factory=lambda: LinearTrajectory((-0.5, 0, 0), (0.5, 0, 0)),
        antenna_factory=lambda rng: _paper_antenna(rng),
        noise_factory=lambda: BurstyPhaseNoise(
            base=SnrScaledPhaseNoise(base_std_rad=0.1, reference_distance_m=0.8),
            burst_probability=0.05,
            burst_magnitude_rad=1.5,
        ),
    )
)

register_workload(
    Workload(
        name="clean-sim",
        description="Sec. III simulation conditions: pure N(0, 0.1) phase noise",
        trajectory_factory=lambda: CircularTrajectory((0, 0, 0), radius=0.3),
        antenna_factory=lambda rng: Antenna(
            physical_center=(1.0, 0.0, 0.0), boresight=(-1, 0, 0)
        ),
        noise_factory=lambda: GaussianPhaseNoise(0.1),
    )
)
