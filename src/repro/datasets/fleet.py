"""Simulated antenna fleets with calibration drift.

The paper calibrates one antenna once; a warehouse deployment has
hundreds whose hardware characteristics move under it. This module
models that regime on top of :mod:`repro.rf`: a row of portal antennas
(each with the usual hidden phase-center displacement and phase offset)
whose offsets evolve as a **per-device random walk plus a shared
temperature coupling** — the two empirically dominant drift terms.
Advancing simulated time mutates the hidden truth; the calibration
registry (:mod:`repro.calib`) is then responsible for noticing and
chasing it.

Drift model, per antenna ``k`` over a step of ``dt`` seconds::

    theta_k  +=  sigma_w * sqrt(dt / 3600) * N(0, 1)          (random walk)
               + c_T * s_k * (T(t + dt) - T(t))               (temperature)

with ambient ``T(t) = A * sin(2*pi * t / period)`` shared by the fleet
and ``s_k`` a per-device sensitivity drawn once at construction. The
phase-center displacement performs an (much slower) independent walk.
Everything is deterministic from the config seed: two fleets built from
the same config and advanced by the same steps agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.core.adaptive import ParameterGrid
from repro.datasets.synthetic import ScanData, default_antenna, simulate_scan
from repro.rf.antenna import Antenna
from repro.rf.noise import GaussianPhaseNoise
from repro.rf.tag import Tag
from repro.trajectory.multiline import ThreeLineScan


@dataclass(frozen=True)
class FleetDriftConfig:
    """Geometry and drift dynamics of a simulated antenna fleet.

    Attributes:
        size: number of antennas, laid out along x.
        spacing_m: portal-to-portal spacing along x.
        standoff_m: antenna y position; scans run along the x-axis at
            ``y = 0`` in front of each antenna (the paper's geometry).
        height_m: antenna z position.
        displacement_scale_m: magnitude of the hidden phase-center
            displacement drawn per device (Fig. 2's 2-3 cm).
        offset_walk_std_rad: phase-offset random-walk scale, radians per
            sqrt hour.
        offset_temp_coeff_rad_per_c: fleet-mean offset sensitivity to
            ambient temperature, radians per degree C.
        temp_sensitivity_spread: relative per-device spread of that
            sensitivity (``s_k ~ 1 + U(-spread, spread)``).
        temp_amplitude_c: ambient temperature swing amplitude.
        temp_period_s: ambient temperature period (default: diurnal).
        displacement_walk_std_m: per-axis phase-center walk, meters per
            sqrt hour (mechanical creep; much slower than the offset).
        tag_offset_rad: offset of the shared calibration tag. All fleet
            calibrations use the *same* tag so relative offsets are
            tag-free (Sec. IV-C2).
        seed: master seed; every randomized quantity derives from it.
    """

    size: int = 10
    spacing_m: float = 2.0
    standoff_m: float = 0.8
    height_m: float = 0.0
    displacement_scale_m: float = 0.025
    offset_walk_std_rad: float = 0.08
    offset_temp_coeff_rad_per_c: float = 0.02
    temp_sensitivity_spread: float = 0.5
    temp_amplitude_c: float = 6.0
    temp_period_s: float = 86400.0
    displacement_walk_std_m: float = 0.0005
    tag_offset_rad: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("fleet must contain at least one antenna")
        if self.spacing_m <= 0.0 or self.standoff_m <= 0.0:
            raise ValueError("spacing and standoff must be positive")
        if self.temp_period_s <= 0.0:
            raise ValueError("temperature period must be positive")


def antenna_name(index: int) -> str:
    """Canonical fleet antenna name (``ant-000``, ``ant-001``, ...)."""
    return f"ant-{index:03d}"


class AntennaFleet:
    """A drifting fleet of portal antennas; see module docstring.

    The fleet owns the hidden ground truth. ``advance`` moves simulated
    time (drifting every antenna); ``calibration_scan`` produces the
    known-trajectory scan (plus the matching adaptive grid) a
    recalibration of one antenna consumes — at the *current* truth, so a
    scan taken after drift reflects the drifted hardware.
    """

    def __init__(self, config: FleetDriftConfig) -> None:
        self.config = config
        build_rng = np.random.default_rng(config.seed)
        self.tag = Tag(phase_offset_rad=config.tag_offset_rad)
        self.clock_s = 0.0
        self._antennas: Dict[str, Antenna] = {}
        self._temp_sensitivity: Dict[str, float] = {}
        half_extent = (config.size - 1) * config.spacing_m / 2.0
        for index in range(config.size):
            name = antenna_name(index)
            position = (
                index * config.spacing_m - half_extent,
                config.standoff_m,
                config.height_m,
            )
            self._antennas[name] = default_antenna(
                position,
                rng=build_rng,
                displacement_scale_m=config.displacement_scale_m,
                name=name,
                boresight=(0.0, -1.0, 0.0),
            )
            self._temp_sensitivity[name] = 1.0 + config.temp_sensitivity_spread * float(
                build_rng.uniform(-1.0, 1.0)
            )
        self._drift_rng = np.random.default_rng(
            np.random.SeedSequence((config.seed, 0x0D21F7))
        )

    # -- introspection ----------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """Antenna names in layout order."""
        return tuple(self._antennas)

    def antenna(self, name: str) -> Antenna:
        """The current (drifted) antenna object for ``name``."""
        return self._antennas[name]

    def true_offset_rad(self, name: str) -> float:
        """The hidden antenna-side phase offset ``theta_R``, right now."""
        return float(self._antennas[name].phase_offset_rad)

    def true_relative_offsets(
        self, names: Optional[Tuple[str, ...]] = None, reference_index: int = 0
    ) -> np.ndarray:
        """Hidden offsets relative to a reference antenna, ``(-pi, pi]``.

        The shared-tag offset cancels in differences, so this is directly
        comparable to what calibration + :func:`relative_phase_offsets`
        recovers.
        """
        ordered = self.names if names is None else names
        offsets = np.asarray([self.true_offset_rad(n) for n in ordered], dtype=float)
        deltas = offsets - offsets[reference_index]
        return np.mod(deltas + np.pi, TWO_PI) - np.pi

    def ambient_temperature_c(self, t_s: Optional[float] = None) -> float:
        """Shared ambient temperature at simulated time ``t_s``."""
        t = self.clock_s if t_s is None else t_s
        return float(
            self.config.temp_amplitude_c
            * np.sin(TWO_PI * t / self.config.temp_period_s)
        )

    # -- drift ------------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Advance simulated time, drifting every antenna's hidden truth."""
        if dt_s < 0.0:
            raise ValueError("time cannot go backward")
        if dt_s == 0.0:
            return
        sqrt_hours = float(np.sqrt(dt_s / 3600.0))
        delta_temp = self.ambient_temperature_c(
            self.clock_s + dt_s
        ) - self.ambient_temperature_c(self.clock_s)
        config = self.config
        for name, antenna in self._antennas.items():
            walk = config.offset_walk_std_rad * sqrt_hours * float(
                self._drift_rng.standard_normal()
            )
            thermal = (
                config.offset_temp_coeff_rad_per_c
                * self._temp_sensitivity[name]
                * delta_temp
            )
            offset = float(np.mod(antenna.phase_offset_rad + walk + thermal, TWO_PI))
            creep = (
                config.displacement_walk_std_m
                * sqrt_hours
                * self._drift_rng.standard_normal(3)
            )
            displacement = np.asarray(antenna.center_displacement, dtype=float) + creep
            self._antennas[name] = Antenna(
                physical_center=antenna.physical_center,
                center_displacement=tuple(float(v) for v in displacement),
                phase_offset_rad=offset,
                boresight=antenna.boresight,
                beamwidth_deg=antenna.beamwidth_deg,
                gain_dbi=antenna.gain_dbi,
                center_wander_m=antenna.center_wander_m,
                name=antenna.name,
            )
        self.clock_s += dt_s

    # -- calibration scans ------------------------------------------------

    def calibration_scan(
        self,
        name: str,
        salt: int = 0,
        half_span_m: float = 0.5,
        noise_std_rad: float = 0.03,
        read_rate_hz: float = 40.0,
    ) -> Tuple[ScanData, ParameterGrid]:
        """A three-line calibration scan in front of one antenna.

        The trajectory is the paper's Fig. 11 scan translated to the
        antenna's portal (x position), interrogated with the fleet's
        shared calibration tag at the antenna's *current* drifted truth.
        ``salt`` varies the read noise deterministically (distinct scans
        of the same antenna); everything else derives from the fleet
        seed, so a scan is reproducible bit-for-bit.

        Returns:
            ``(scan, grid)`` — the scan bundle and the adaptive
            :class:`ParameterGrid` centered on this antenna's portal.
        """
        antenna = self._antennas[name]
        index = list(self._antennas).index(name)
        portal_x = float(antenna.physical_center_array[0])
        trajectory = ThreeLineScan(
            -half_span_m, half_span_m, origin=(portal_x, 0.0, 0.0)
        )
        rng = np.random.default_rng(
            np.random.SeedSequence((self.config.seed, 0x5CA7, index, salt))
        )
        scan = simulate_scan(
            trajectory,
            antenna,
            tag=self.tag,
            rng=rng,
            noise=GaussianPhaseNoise(noise_std_rad),
            read_rate_hz=read_rate_hz,
        )
        grid = ParameterGrid(
            ranges_m=(0.8, 1.0), intervals_m=(0.2, 0.3), axis=0, center=portal_x
        )
        return scan, grid

    def static_tag_phases(
        self,
        tag_position: Tuple[float, float, float],
        names: Optional[Tuple[str, ...]] = None,
        noise_std_rad: float = 0.0,
        salt: int = 0,
    ) -> np.ndarray:
        """One wrapped phase per antenna for a static tag (Sec. V-F1).

        The measurement the multi-antenna differential estimators
        consume: each antenna reads the same static tag once (circular
        noise optional), at the current drifted truth.
        """
        ordered = self.names if names is None else names
        point = np.asarray(tag_position, dtype=float)
        rng = np.random.default_rng(
            np.random.SeedSequence((self.config.seed, 0x57A7, salt))
        )
        values: List[float] = []
        for name in ordered:
            antenna = self._antennas[name]
            distance = antenna.distance_to(point)
            phase = (
                2.0 * TWO_PI / DEFAULT_WAVELENGTH_M * distance
                + antenna.phase_offset_rad
                + self.tag.phase_offset_rad
            )
            if noise_std_rad > 0.0:
                phase += float(rng.normal(0.0, noise_std_rad))
            values.append(float(np.mod(phase, TWO_PI)))
        return np.asarray(values, dtype=float)
