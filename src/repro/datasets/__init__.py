"""Synthetic dataset generation and read-record persistence.

:mod:`repro.datasets.synthetic` glues the RF and trajectory substrates
into one call that produces everything a localizer consumes (positions,
wrapped phases, segment structure, transit mask). :mod:`repro.datasets.io`
round-trips read records through CSV so scans can be archived and replayed.
"""

from repro.datasets.fleet import (
    AntennaFleet,
    FleetDriftConfig,
    antenna_name,
)
from repro.datasets.synthetic import (
    ScanData,
    default_antenna,
    simulate_scan,
    simulate_static_reads,
)
from repro.datasets.io import (
    RecordedStream,
    read_records_csv,
    session_streams,
    write_records_csv,
)
from repro.datasets.workloads import (
    Workload,
    get_workload,
    list_workloads,
    register_workload,
)

__all__ = [
    "AntennaFleet",
    "FleetDriftConfig",
    "antenna_name",
    "ScanData",
    "default_antenna",
    "simulate_scan",
    "simulate_static_reads",
    "read_records_csv",
    "write_records_csv",
    "RecordedStream",
    "session_streams",
    "Workload",
    "get_workload",
    "list_workloads",
    "register_workload",
]
