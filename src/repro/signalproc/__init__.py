"""Signal preprocessing for reported RFID phase (paper Sec. IV-A).

The reader reports phase modulo 2*pi. Before any localization, LION:

1. **unwraps** the phase profile of a continuous scan, exploiting the fact
   that at >100 Hz sampling and ~10 cm/s tag speed the displacement between
   consecutive reads is far below half a wavelength (~16 cm), and
2. **smooths** the unwrapped profile with a moving-average filter to shave
   off white phase noise.

For multi-trajectory 3D scans (Fig. 11) the per-trajectory unwrapped
profiles must additionally be **stitched** so that phase differences across
trajectories remain consistent with distance differences (Sec. IV-B).
"""

from repro.signalproc.wrapping import (
    wrap_phase,
    wrap_to_pi,
    phase_difference,
    phase_from_distance,
    distance_difference_from_phase,
)
from repro.signalproc.unwrap import (
    unwrap_phase,
    unwrap_segments,
    stitch_profiles,
    count_wraps,
)
from repro.signalproc.smoothing import (
    moving_average,
    smooth_phase_profile,
    median_filter,
    hampel_filter,
)
from repro.signalproc.alignment import (
    AlignmentResult,
    apply_clock_offset,
    estimate_clock_offset,
)
from repro.signalproc.stats import (
    circular_mean,
    circular_std,
    circular_difference,
    mean_resultant_length,
)

__all__ = [
    "wrap_phase",
    "wrap_to_pi",
    "phase_difference",
    "phase_from_distance",
    "distance_difference_from_phase",
    "unwrap_phase",
    "unwrap_segments",
    "stitch_profiles",
    "count_wraps",
    "moving_average",
    "smooth_phase_profile",
    "median_filter",
    "hampel_filter",
    "AlignmentResult",
    "apply_clock_offset",
    "estimate_clock_offset",
    "circular_mean",
    "circular_std",
    "circular_difference",
    "mean_resultant_length",
]
