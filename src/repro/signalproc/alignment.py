"""Time alignment between phase streams and trajectory encoders.

In a real deployment the reader's read timestamps and the slide/turntable
encoder's position timestamps come from different clocks; an offset of
tens of milliseconds misassigns positions to phases (at 10 cm/s, 50 ms is
5 mm — already above LION's accuracy floor). This module estimates the
clock offset by exploiting the model itself: the *correct* offset is the
one under which the radical system is most self-consistent, so we grid
a candidate offset range, localize at each candidate, and pick the offset
minimizing the normalized residual scale. A parabolic refinement around
the best grid point gives sub-grid resolution.

**Observability caveat:** on a constant-velocity straight sweep, a clock
offset is almost perfectly absorbed as a spatial shift of the whole scan
(every assigned position moves by ``v * tau``), so the residual criterion
is nearly flat and the offset is fundamentally weakly observable — the
localization is biased by ``v * tau`` without noticing. Make the offset
observable by including a velocity change in the scan; a direction
reversal (back-and-forth pass) is ideal, because under a wrong offset the
two passes disagree about where the tag was, producing a sharp residual
minimum at the true offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # avoid a circular import; the localizer imports signalproc
    from repro.core.localizer import LionLocalizer


@dataclass(frozen=True)
class AlignmentResult:
    """Output of the clock-offset search.

    Attributes:
        offset_s: estimated offset to *add* to phase timestamps so they
            land on the trajectory clock.
        score: the residual scale at the chosen offset (lower is better).
        offsets_s: the candidate offsets evaluated.
        scores: the residual scale per candidate.
    """

    offset_s: float
    score: float
    offsets_s: np.ndarray
    scores: np.ndarray


def _positions_at(
    trajectory_times_s: np.ndarray,
    trajectory_positions: np.ndarray,
    query_times_s: np.ndarray,
) -> np.ndarray:
    """Linear interpolation of the trajectory at query times (clamped)."""
    clamped = np.clip(
        query_times_s, trajectory_times_s[0], trajectory_times_s[-1]
    )
    return np.stack(
        [
            np.interp(clamped, trajectory_times_s, trajectory_positions[:, axis])
            for axis in range(trajectory_positions.shape[1])
        ],
        axis=1,
    )


def estimate_clock_offset(
    localizer: "LionLocalizer",
    trajectory_times_s: np.ndarray,
    trajectory_positions: np.ndarray,
    phase_times_s: np.ndarray,
    wrapped_phase_rad: np.ndarray,
    candidate_offsets_s: Sequence[float] | np.ndarray = np.linspace(-0.2, 0.2, 21),
    refine: bool = True,
) -> AlignmentResult:
    """Estimate the phase-vs-encoder clock offset.

    Args:
        localizer: the model used to score candidates (its dimension and
            interval apply).
        trajectory_times_s / trajectory_positions: the encoder stream,
            shape ``(m,)`` and ``(m, dim)``.
        phase_times_s / wrapped_phase_rad: the reader stream, shape
            ``(n,)`` each, time-ordered.
        candidate_offsets_s: offsets to evaluate.
        refine: parabolic interpolation around the best grid point.

    Returns:
        The estimated offset and the full score curve.

    Raises:
        ValueError: on shape mismatches or an empty candidate list.
    """
    times_t = np.asarray(trajectory_times_s, dtype=float)
    points = np.asarray(trajectory_positions, dtype=float)
    times_p = np.asarray(phase_times_s, dtype=float)
    phases = np.asarray(wrapped_phase_rad, dtype=float)
    if points.ndim != 2 or times_t.shape != (points.shape[0],):
        raise ValueError("trajectory stream shapes do not align")
    if phases.shape != times_p.shape or phases.ndim != 1:
        raise ValueError("phase stream shapes do not align")
    candidates = np.asarray(list(candidate_offsets_s), dtype=float)
    if candidates.size == 0:
        raise ValueError("need at least one candidate offset")

    scores = np.full(candidates.shape, np.inf)
    for index, offset in enumerate(candidates):
        positions = _positions_at(times_t, points, times_p + offset)
        try:
            result = localizer.locate(positions, phases)
        except ValueError:
            continue
        scores[index] = result.solution.mean_abs_residual
    if not np.isfinite(scores).any():
        raise ValueError("no candidate offset produced a valid localization")

    best = int(np.nanargmin(scores))
    offset = float(candidates[best])
    score = float(scores[best])
    if refine and 0 < best < candidates.size - 1 and np.isfinite(
        scores[best - 1]
    ) and np.isfinite(scores[best + 1]):
        # Parabolic vertex through the three points around the minimum.
        y0, y1, y2 = scores[best - 1], scores[best], scores[best + 1]
        denominator = y0 - 2.0 * y1 + y2
        if denominator > 0.0:
            step = candidates[best + 1] - candidates[best]
            offset = float(candidates[best] + 0.5 * step * (y0 - y2) / denominator)
    return AlignmentResult(
        offset_s=offset, score=score, offsets_s=candidates, scores=scores
    )


def apply_clock_offset(
    trajectory_times_s: np.ndarray,
    trajectory_positions: np.ndarray,
    phase_times_s: np.ndarray,
    offset_s: float,
) -> np.ndarray:
    """Positions for each phase read under a given clock offset."""
    return _positions_at(
        np.asarray(trajectory_times_s, dtype=float),
        np.asarray(trajectory_positions, dtype=float),
        np.asarray(phase_times_s, dtype=float) + offset_s,
    )
