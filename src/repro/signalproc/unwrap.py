"""Phase unwrapping and multi-trajectory profile stitching (Sec. IV-A1, IV-B).

A moving tag sampled at over 100 Hz displaces far less than half a
wavelength (~16 cm at 920.625 MHz) between consecutive reads, so any jump
of ``pi`` radians or more between neighbours must be a wrap artifact of the
modulo-2*pi report, not real motion. Unwrapping adds or subtracts multiples
of 2*pi until every jump is below ``pi``.

Separate trajectories (the three lines of the Fig. 11 scan) produce
unwrapped profiles whose *relative* offsets are unknown — phase differences
across trajectories would not match distance differences. ``stitch_profiles``
restores consistency by aligning each profile's endpoint phase to the
distance-predicted phase at a shared anchor, mirroring the paper's
"move the tag from the end of one trajectory to the start of the other"
adjustment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI
from repro.signalproc.wrapping import phase_from_distance, wrap_to_pi


def unwrap_phase(wrapped_rad: np.ndarray, jump_threshold_rad: float = np.pi) -> np.ndarray:
    """Unwrap a profile of consecutive wrapped phase values.

    When the jump between two consecutive values is at least
    ``jump_threshold_rad``, multiples of 2*pi are added or subtracted until
    the jump falls below the threshold (paper Sec. IV-A1).

    Args:
        wrapped_rad: 1-D array of wrapped phase values, radians.
        jump_threshold_rad: maximum believable physical jump; defaults to
            ``pi`` which is exact for displacements below a quarter
            wavelength per sample.

    Returns:
        The unwrapped profile; its first element equals the input's first
        element.

    Raises:
        ValueError: for empty input or a non-positive threshold.
    """
    phases = np.asarray(wrapped_rad, dtype=float)
    if phases.ndim != 1 or phases.size == 0:
        raise ValueError("expected a non-empty 1-D phase profile")
    if jump_threshold_rad <= 0.0:
        raise ValueError("jump threshold must be positive")
    # numpy's unwrap implements exactly the add/subtract-2*pi rule.
    return np.unwrap(phases, discont=jump_threshold_rad)


def count_wraps(wrapped_rad: np.ndarray, jump_threshold_rad: float = np.pi) -> int:
    """Number of 2*pi wrap events detected in a wrapped profile."""
    phases = np.asarray(wrapped_rad, dtype=float)
    if phases.size < 2:
        return 0
    jumps = np.abs(np.diff(phases))
    return int(np.count_nonzero(jumps >= jump_threshold_rad))


def unwrap_segments(
    segments: Sequence[np.ndarray], jump_threshold_rad: float = np.pi
) -> list[np.ndarray]:
    """Unwrap each segment independently.

    Returns a list of unwrapped profiles, one per input segment. Use
    :func:`stitch_profiles` afterwards to make them mutually consistent.
    """
    return [unwrap_phase(segment, jump_threshold_rad) for segment in segments]


def stitch_profiles(
    profiles: Sequence[np.ndarray],
    anchor_distances_m: Sequence[float],
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> list[np.ndarray]:
    """Shift independently-unwrapped profiles onto a common phase datum.

    Each profile keeps its internal shape; profile ``k`` is shifted by a
    constant so that its first sample equals the distance-predicted phase
    of its anchor, *relative to profile 0's anchor*. Concretely, profile
    ``k``'s first sample is moved to::

        profile_0[0] + (4*pi/lambda) * (anchor_k - anchor_0)

    where ``anchor_k`` is the true antenna distance at profile ``k``'s
    first sample. After stitching, phase differences between any two
    samples — same profile or not — match ``4*pi/lambda`` times their
    distance difference (up to noise), which is what the linear model
    needs (Sec. IV-B).

    In a real deployment the anchors come from the paper's trick of moving
    the tag continuously from the end of one trajectory to the start of the
    next; in simulation they are available from geometry. Either way only
    *differences* of anchor distances matter, so a global unknown offset in
    the anchors is harmless.

    Args:
        profiles: independently-unwrapped phase profiles.
        anchor_distances_m: antenna distance at the first sample of each
            profile (or any values with the correct pairwise differences).
        wavelength_m: carrier wavelength, meters.

    Raises:
        ValueError: if lengths disagree or no profiles are given.
    """
    if len(profiles) == 0:
        raise ValueError("no profiles to stitch")
    if len(profiles) != len(anchor_distances_m):
        raise ValueError(
            f"got {len(profiles)} profiles but {len(anchor_distances_m)} anchors"
        )
    if wavelength_m <= 0.0:
        raise ValueError("wavelength must be positive")

    base = np.asarray(profiles[0], dtype=float)
    stitched = [base.copy()]
    for profile, anchor in zip(profiles[1:], anchor_distances_m[1:]):
        arr = np.asarray(profile, dtype=float)
        expected_start = base[0] + (2.0 * TWO_PI / wavelength_m) * (
            anchor - anchor_distances_m[0]
        )
        # Preserve the sub-2*pi fractional phase the profile itself carries
        # (it already encodes noise/offset); only correct the integer-wrap
        # ambiguity plus the coarse alignment.
        shift = expected_start - arr[0]
        wraps = np.round(shift / TWO_PI)
        residual = shift - wraps * TWO_PI
        if abs(residual) > np.pi / 2.0:
            # The fractional parts disagree strongly; trust the distance
            # prediction entirely (equivalent to re-anchoring the profile).
            stitched.append(arr + shift)
        else:
            stitched.append(arr + wraps * TWO_PI)
    return stitched


def unwrap_error_estimate(
    wrapped_rad: np.ndarray,
    expected_rad: np.ndarray,
) -> float:
    """RMS deviation between an unwrapped profile and an expected profile.

    Both profiles are first reduced modulo a common constant offset (the
    unknown absolute phase), so only the *shape* is compared. Useful as a
    sanity metric in experiments.
    """
    got = np.asarray(wrapped_rad, dtype=float)
    want = np.asarray(expected_rad, dtype=float)
    if got.shape != want.shape:
        raise ValueError(f"shape mismatch: {got.shape} vs {want.shape}")
    delta = got - want
    delta = delta - np.mean(delta)
    return float(np.sqrt(np.mean(wrap_to_pi(delta) ** 2)))
