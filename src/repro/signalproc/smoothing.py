"""Noise-reduction filters for unwrapped phase profiles (Sec. IV-A2).

The paper smooths the unwrapped phase profile with a moving-average filter
to reduce white noise. We additionally provide a median filter and a Hampel
(median + MAD outlier rejection) filter — multipath occasionally produces
isolated phase spikes that a mean filter smears instead of removing.
"""

from __future__ import annotations

import numpy as np


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with *symmetric* edge shrinking.

    Near the edges the half-width shrinks equally on both sides
    (``half_i = min(half, i, n-1-i)``) so every output sample averages a
    window centered on itself. An asymmetric edge window would shift edge
    values toward the interior — a bias that matters downstream because
    the localizer's reference read can sit near a trajectory-corner edge,
    and a millimeter-scale phase bias there is amplified ~10x by the
    lower-dimension sqrt recovery.

    Args:
        values: 1-D array.
        window: window width in samples; values < 2 return the input copy.

    Raises:
        ValueError: if ``values`` is not 1-D or ``window`` is not positive.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if window == 1 or arr.size <= 1:
        return arr.copy()
    cumsum = np.concatenate(([0.0], np.cumsum(arr)))
    half = min(window // 2, arr.size - 1)
    n = arr.size
    # Vectorized form of the per-sample window sum: each element performs
    # the same cumsum difference and division the scalar loop did, so the
    # output is bit-identical — only the loop overhead is gone (this sits
    # on the per-request serving path, where it was the hottest fixed cost).
    index = np.arange(n)
    reach = np.minimum(half, np.minimum(index, n - 1 - index))
    return (cumsum[index + reach + 1] - cumsum[index - reach]) / (2 * reach + 1)


def smooth_phase_profile(unwrapped_rad: np.ndarray, window: int = 9) -> np.ndarray:
    """Moving-average smoothing of an *unwrapped* phase profile.

    Unwrapping must happen first: averaging wrapped phase across a 2*pi
    jump produces garbage. The default window of 9 samples spans ~75 ms at
    120 Hz, i.e. ~7.5 mm of tag travel at 10 cm/s — well below the spatial
    scale of the phase profile's curvature.
    """
    return moving_average(unwrapped_rad, window)


def median_filter(values: np.ndarray, window: int) -> np.ndarray:
    """Centered running median with edge shrinking; same length as input."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if window == 1 or arr.size <= 1:
        return arr.copy()
    half = min(window // 2, arr.size - 1)
    n = arr.size
    out = np.empty(n, dtype=float)
    for i in range(n):
        reach = min(half, i, n - 1 - i)
        out[i] = np.median(arr[i - reach : i + reach + 1])
    return out


def hampel_filter(
    values: np.ndarray, window: int = 11, n_sigmas: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Hampel outlier rejection: replace spikes by the running median.

    A sample is an outlier when it deviates from the running median by more
    than ``n_sigmas`` times the scaled median absolute deviation (MAD).

    Returns:
        ``(cleaned, outlier_mask)`` where ``outlier_mask`` is a boolean
        array marking replaced samples.

    Raises:
        ValueError: for non-1-D input or non-positive parameters.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D input, got shape {arr.shape}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if n_sigmas <= 0.0:
        raise ValueError(f"n_sigmas must be positive, got {n_sigmas}")
    # Scale factor relating MAD to Gaussian sigma.
    mad_to_sigma = 1.4826
    half = window // 2
    n = arr.size
    cleaned = arr.copy()
    mask = np.zeros(n, dtype=bool)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        local = arr[lo:hi]
        median = np.median(local)
        sigma = mad_to_sigma * np.median(np.abs(local - median))
        if sigma > 0.0 and abs(arr[i] - median) > n_sigmas * sigma:
            cleaned[i] = median
            mask[i] = True
    return cleaned, mask
