"""Circular statistics for phase data.

Phase offsets (Eq. 17) live on the circle: averaging 0.1 and 6.2 radians
arithmetically gives ~3.15 when the true mean is ~6.28/0. All averaging of
wrapped phase in this library goes through these circular estimators.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI


def mean_resultant_length(angles_rad: np.ndarray) -> float:
    """Length of the mean resultant vector, in ``[0, 1]``.

    1 means all angles coincide; 0 means they are spread uniformly.

    Raises:
        ValueError: for empty input.
    """
    arr = np.asarray(angles_rad, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute statistics of empty angle set")
    return float(np.abs(np.mean(np.exp(1j * arr))))


def circular_mean(angles_rad: np.ndarray) -> float:
    """Circular mean of angles, returned in ``[0, 2*pi)``.

    Raises:
        ValueError: for empty input or a zero resultant (undefined mean).
    """
    arr = np.asarray(angles_rad, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute statistics of empty angle set")
    resultant = np.mean(np.exp(1j * arr))
    if np.abs(resultant) < 1e-12:
        raise ValueError("circular mean undefined: angles are balanced")
    return float(np.mod(np.angle(resultant), TWO_PI))


def circular_std(angles_rad: np.ndarray) -> float:
    """Circular standard deviation ``sqrt(-2 ln R)`` in radians.

    Raises:
        ValueError: for empty input.
    """
    r = mean_resultant_length(np.asarray(angles_rad, dtype=float))
    if r <= 0.0:
        return float("inf")
    return float(np.sqrt(-2.0 * np.log(r)))


def circular_difference(a_rad: "np.ndarray | float", b_rad: "np.ndarray | float") -> "np.ndarray | float":
    """Signed smallest difference ``a - b`` on the circle, in ``(-pi, pi]``."""
    diff = np.mod(np.asarray(a_rad, dtype=float) - np.asarray(b_rad, dtype=float) + np.pi, TWO_PI) - np.pi
    diff = np.where(diff == -np.pi, np.pi, diff)
    if np.isscalar(a_rad) and np.isscalar(b_rad):
        return float(diff)
    return diff


def circular_distance(a_rad: "np.ndarray | float", b_rad: "np.ndarray | float") -> "np.ndarray | float":
    """Unsigned smallest difference between two angles, in ``[0, pi]``."""
    result = np.abs(circular_difference(a_rad, b_rad))
    if np.isscalar(a_rad) and np.isscalar(b_rad):
        return float(result)
    return result
