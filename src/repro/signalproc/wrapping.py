"""Phase wrapping and the phase <-> distance relation.

The reported phase of an RFID read is (paper Eq. 1):

``theta = (theta_d + theta_T + theta_R) mod 2*pi``

with ``theta_d = (2*pi / lambda) * 2 * d`` the round-trip distance term,
``theta_T`` the tag's reflection-characteristic offset and ``theta_R`` the
reader circuitry offset. The factor 2 on ``d`` is the backscatter round
trip, which is why a full 2*pi wrap corresponds to *half* a wavelength of
tag displacement.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M, TWO_PI


def wrap_phase(phase_rad: "np.ndarray | float") -> "np.ndarray | float":
    """Wrap phase into ``[0, 2*pi)`` as RFID readers report it.

    Guards the floating-point edge where ``np.mod(-epsilon, 2*pi)`` rounds
    to exactly ``2*pi``, which would violate the half-open interval.
    """
    wrapped = np.mod(phase_rad, TWO_PI)
    wrapped = np.where(wrapped >= TWO_PI, 0.0, wrapped)
    if np.isscalar(phase_rad):
        return float(wrapped)
    return wrapped


def wrap_to_pi(phase_rad: "np.ndarray | float") -> "np.ndarray | float":
    """Wrap phase into ``(-pi, pi]`` (signed smallest representation)."""
    wrapped = np.mod(np.asarray(phase_rad, dtype=float) + np.pi, TWO_PI) - np.pi
    # Map -pi to +pi so the interval is half-open on the correct side.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(phase_rad):
        return float(wrapped)
    return wrapped


def phase_difference(theta_a: "np.ndarray | float", theta_b: "np.ndarray | float") -> "np.ndarray | float":
    """Signed smallest angular difference ``theta_a - theta_b`` in ``(-pi, pi]``."""
    return wrap_to_pi(np.asarray(theta_a, dtype=float) - np.asarray(theta_b, dtype=float))


def phase_from_distance(
    distance_m: "np.ndarray | float",
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    wrapped: bool = True,
) -> "np.ndarray | float":
    """Distance-induced phase ``theta_d = (2*pi/lambda) * 2 * d``.

    Args:
        distance_m: one-way antenna-tag distance(s), meters.
        wavelength_m: carrier wavelength, meters.
        wrapped: when True (default) return the value modulo 2*pi, as a
            reader would report it; when False return the unwrapped value.

    Raises:
        ValueError: if ``wavelength_m`` is not positive.
    """
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
    theta = (TWO_PI / wavelength_m) * 2.0 * np.asarray(distance_m, dtype=float)
    if wrapped:
        theta = wrap_phase(theta)
    if np.isscalar(distance_m):
        return float(theta)
    return theta


def distance_difference_from_phase(
    theta_t: "np.ndarray | float",
    theta_r: float,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
) -> "np.ndarray | float":
    """Distance difference from *unwrapped* phase difference (paper Eq. 6).

    ``delta_d_t = lambda / (4*pi) * (theta_t - theta_r)``

    Both phases must come from the same unwrapped profile; feeding raw
    wrapped phases in loses the integer-wavelength component.

    Args:
        theta_t: unwrapped phase(s) at the instantaneous tag position(s).
        theta_r: unwrapped phase at the reference position.
        wavelength_m: carrier wavelength, meters.

    Raises:
        ValueError: if ``wavelength_m`` is not positive.
    """
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
    delta = (wavelength_m / (2.0 * TWO_PI)) * (np.asarray(theta_t, dtype=float) - theta_r)
    if np.isscalar(theta_t):
        return float(delta)
    return delta
