"""Parallel execution layer for the evaluation stack.

Every heavy workload in this repository — Monte-Carlo studies, the
adaptive (range, interval) sweep, figure regeneration — reduces to the
same pattern: map an independent, deterministic function over a list of
work items and fold the results in order. This module factors that
pattern into a small executor abstraction with three interchangeable
backends:

- ``"serial"`` — a plain loop; the reference semantics.
- ``"thread"`` — a thread pool; useful when the work releases the GIL
  (BLAS-heavy solves) or is I/O bound.
- ``"process"`` — a process pool; true CPU parallelism. Work functions
  and their arguments must be picklable (module-level callables).

All backends preserve item order, so a deterministic work function gives
bit-identical results on every backend — parallelism never changes an
answer, only how fast it arrives. Worker count resolves, in priority
order: an explicit ``jobs=`` argument, :func:`set_default_jobs` (the CLI
``--jobs`` flag), the ``LION_JOBS`` environment variable, and finally
``os.cpu_count()``.

Registry-dispatched estimation composes with these backends through
:func:`repro.pipeline.estimate_many`, which fans a batch of requests for
one named estimator over any executor here.

When observability is on (see :mod:`repro.obs`), every ``map`` records
per-chunk latency histograms, item/chunk counters, and a worker-
utilization gauge (labelled by backend), and the process backend runs
each chunk against an isolated child registry whose snapshot — plus any
spans the work recorded — is merged back into the parent, so child-
process metrics are never lost. With observability off, dispatch takes
the exact pre-instrumentation path after a single flag check.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple, TypeVar

import numpy as np

from repro.obs import (
    LATENCY_BUCKETS_S,
    attach_spans,
    get_registry,
    metrics_enabled,
    obs_enabled,
    tracing_enabled,
)
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable consulted by :func:`resolve_jobs`.
JOBS_ENV_VAR = "LION_JOBS"

EXECUTOR_NAMES = ("serial", "thread", "process")

_default_jobs: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the session-wide default worker count (the CLI ``--jobs`` flag).

    Pass ``None`` to clear the override and fall back to ``LION_JOBS`` /
    ``os.cpu_count()``.

    Raises:
        ValueError: on a non-positive worker count.
    """
    global _default_jobs
    if jobs is not None and jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    _default_jobs = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count from argument, session default, env, and CPUs.

    Raises:
        ValueError: on a non-positive explicit count or ``LION_JOBS``.
    """
    if jobs is not None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        return jobs
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env is not None:
        try:
            value = int(env)
        except ValueError as error:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from error
        if value <= 0:
            raise ValueError(f"{JOBS_ENV_VAR} must be positive, got {value}")
        return value
    return max(os.cpu_count() or 1, 1)


def chunk_items(items: Sequence[ItemT], chunk_size: int) -> List[List[ItemT]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``.

    Order is preserved: concatenating the chunks restores ``items``.

    Raises:
        ValueError: on a non-positive chunk size.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    sequence = list(items)
    return [sequence[i : i + chunk_size] for i in range(0, len(sequence), chunk_size)]


def default_chunk_size(item_count: int, jobs: int, chunks_per_worker: int = 4) -> int:
    """Chunk size giving each worker a few chunks (load balancing vs overhead)."""
    if item_count <= 0:
        return 1
    return max(1, -(-item_count // max(jobs * chunks_per_worker, 1)))


def _apply_chunk(fn: Callable[[ItemT], ResultT], chunk: List[ItemT]) -> List[ResultT]:
    """Run ``fn`` over one chunk; module-level so process backends can pickle it."""
    return [fn(item) for item in chunk]


def _call_catching(fn: Callable[[ItemT], ResultT], item: ItemT) -> Tuple[bool, Any]:
    """Run ``fn`` on one item, capturing the exception instead of raising.

    Module-level (and wrapped via :func:`functools.partial`) so the process
    backend can pickle it when ``fn`` itself is picklable.
    """
    try:
        return True, fn(item)
    except Exception as error:  # noqa: BLE001 - isolation is the point
        return False, error


#: What an observed chunk returns: (results, metrics snapshot or None,
#: serialized spans or None, busy seconds, worker pid).
ObservedChunk = Tuple[List[Any], Dict[str, Any] | None, List[Dict[str, Any]] | None, float, int]


def _apply_chunk_observed(
    fn: Callable[[ItemT], ResultT],
    chunk: List[ItemT],
    isolate: bool,
    metrics_on: bool,
    tracing_on: bool,
) -> ObservedChunk:
    """Observed variant of :func:`_apply_chunk`, timing the chunk.

    With ``isolate=True`` (process backend) the chunk runs against a fresh
    metrics registry and an emptied span buffer, and returns both as
    picklable payloads for the parent to merge — child-process metrics and
    spans are never lost, regardless of the pool's start method (the
    enable flags are re-asserted explicitly for spawn-style workers).
    Thread workers (``isolate=False``) record straight into the shared
    registry, which is thread-safe, so only timing comes back.
    """
    start = time.perf_counter()
    if not isolate:
        results = [fn(item) for item in chunk]
        return results, None, None, time.perf_counter() - start, threading.get_ident()
    if metrics_on:
        _obs_metrics.enable_metrics()
    if tracing_on:
        _obs_trace.enable_tracing()
    with _obs_metrics.scoped_registry() as registry:
        # Drop spans inherited from a forked parent — including any still-
        # open span on the inherited thread-local stack, which would
        # otherwise silently swallow the chunk's spans as its children.
        _obs_trace.reset_tracing()
        results = [fn(item) for item in chunk]
        payload = registry.snapshot() if metrics_on else None
        spans = _obs_trace.drain_spans() if tracing_on else None
    return results, payload, spans, time.perf_counter() - start, os.getpid()


class Executor(ABC):
    """Order-preserving map/map-reduce over independent work items."""

    name: str = "abstract"

    @abstractmethod
    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in item order.

        The first exception raised by ``fn`` propagates (for parallel
        backends, after in-flight work completes).
        """

    def map_catching(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[Tuple[bool, Any]]:
        """Apply ``fn`` to every item, capturing per-item exceptions.

        Returns ``(ok, payload)`` pairs in item order: ``(True, result)``
        for items that succeeded and ``(False, exception)`` for items whose
        call raised. Unlike :meth:`map`, one failing item never aborts the
        rest — the isolation the serving layer (:mod:`repro.serve`) needs
        so a degenerate request degrades alone instead of poisoning its
        dispatch group.
        """
        return self.map(functools.partial(_call_catching, fn), items)

    def map_reduce(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        reduce_fn: Callable[[Any, ResultT], Any] | None = None,
        initial: Any = None,
    ) -> Any:
        """Map ``fn`` over ``items`` and fold the results in item order.

        With no ``reduce_fn`` this returns the mapped list. The fold is
        always performed serially, in item order, so reductions that are
        not associative-commutative still give backend-independent
        results.
        """
        results = self.map(fn, items)
        if reduce_fn is None:
            return results
        accumulator = initial
        for result in results:
            accumulator = reduce_fn(accumulator, result)
        return accumulator


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        if not metrics_enabled():
            return [fn(item) for item in items]
        start = time.perf_counter()
        results = [fn(item) for item in items]
        elapsed = time.perf_counter() - start
        _record_map_metrics(self.name, len(results), [elapsed], 1, 1, elapsed)
        return results


def _record_map_metrics(
    backend: str,
    items: int,
    chunk_seconds: List[float],
    jobs: int,
    workers_used: int,
    wall_s: float,
) -> None:
    """Fold one ``map``'s latency/utilization numbers into the registry."""
    registry = get_registry()
    registry.counter("parallel.items_total", backend=backend).inc(items)
    registry.counter("parallel.chunks_total", backend=backend).inc(len(chunk_seconds))
    latency = registry.histogram(
        "parallel.chunk_seconds", buckets=LATENCY_BUCKETS_S, backend=backend
    )
    for seconds in chunk_seconds:
        latency.observe(seconds)
    # Utilization: fraction of the pool's wall-clock capacity spent inside
    # chunks; 1.0 means every worker was busy the whole map.
    busy = sum(chunk_seconds)
    registry.gauge("parallel.worker_utilization", backend=backend).set(
        min(busy / (wall_s * jobs), 1.0) if wall_s > 0 else 0.0
    )
    registry.gauge("parallel.workers_used", backend=backend).set(workers_used)


class _PoolExecutor(Executor):
    """Shared chunking logic for the thread and process backends."""

    #: Whether workers need isolated metric/span collection for merge-back
    #: (True for process pools; thread pools share the parent's registry).
    _isolate_obs = False

    def __init__(self, jobs: int | None = None, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        sequence = list(items)
        if not sequence:
            return []
        observing = obs_enabled()
        if self.jobs == 1 or len(sequence) == 1:
            if not metrics_enabled():
                return [fn(item) for item in sequence]
            start = time.perf_counter()
            results = [fn(item) for item in sequence]
            elapsed = time.perf_counter() - start
            _record_map_metrics(self.name, len(results), [elapsed], 1, 1, elapsed)
            return results
        size = self.chunk_size or default_chunk_size(len(sequence), self.jobs)
        chunks = chunk_items(sequence, size)
        if not observing:
            worker = functools.partial(_apply_chunk, fn)
            flattened: List[ResultT] = []
            for chunk_result in self._map_chunks(worker, chunks):
                flattened.extend(chunk_result)
            return flattened
        return self._map_observed(fn, chunks, len(sequence))

    def _map_observed(
        self,
        fn: Callable[[ItemT], ResultT],
        chunks: List[List[ItemT]],
        item_count: int,
    ) -> List[ResultT]:
        """Observed dispatch: time chunks, merge worker metrics/spans back."""
        worker = functools.partial(
            _apply_chunk_observed,
            fn,
            isolate=self._isolate_obs,
            metrics_on=metrics_enabled(),
            tracing_on=tracing_enabled(),
        )
        start = time.perf_counter()
        observed = self._map_chunks(worker, chunks)
        wall = time.perf_counter() - start
        flattened: List[ResultT] = []
        chunk_seconds: List[float] = []
        worker_pids: set[int] = set()
        merged_spans: List[Dict[str, Any]] = []
        registry = get_registry()
        for results, payload, spans, busy_s, pid in observed:
            flattened.extend(results)
            chunk_seconds.append(busy_s)
            worker_pids.add(pid)
            if payload is not None:
                registry.merge(payload)
            if spans:
                merged_spans.extend(spans)
        if metrics_enabled():
            _record_map_metrics(
                self.name, item_count, chunk_seconds, self.jobs, len(worker_pids), wall
            )
        if merged_spans and tracing_enabled():
            attach_spans(merged_spans)
        return flattened

    def _map_chunks(
        self, worker: Callable[[List[ItemT]], Any], chunks: List[List[ItemT]]
    ) -> List[Any]:
        raise NotImplementedError


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; best when the work releases the GIL."""

    name = "thread"

    def _map_chunks(
        self, worker: Callable[[List[ItemT]], Any], chunks: List[List[ItemT]]
    ) -> List[Any]:
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(worker, chunks))


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; work function and items must be picklable."""

    name = "process"
    _isolate_obs = True

    def _map_chunks(
        self, worker: Callable[[List[ItemT]], Any], chunks: List[List[ItemT]]
    ) -> List[Any]:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(worker, chunks))


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to one array living in POSIX shared memory.

    Attributes:
        name: the ``multiprocessing.shared_memory`` segment name.
        shape / dtype: how workers reconstruct the ndarray view.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArrayBundle:
    """Parent-side owner of a set of arrays placed in shared memory once.

    Process-backend work items that all reference the same large arrays
    (scan ``positions``, the preprocessed ``profile``) would otherwise
    re-pickle those arrays into every dispatched chunk. The bundle copies
    each array into its own ``multiprocessing.shared_memory`` segment up
    front; chunks then carry only the tiny :class:`SharedArraySpec`
    handles, and workers map the bytes via :func:`attach_shared_arrays`
    — zero-copy and byte-exact, so results are bit-identical to the
    pickling path. ``None`` values pass through as ``None`` (optional
    arrays keep their meaning).

    Use as a context manager; segments are closed and unlinked on exit,
    after the map completes.
    """

    def __init__(self, **arrays: np.ndarray | None) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self.specs: Dict[str, SharedArraySpec | None] = {}
        try:
            for key, value in arrays.items():
                if value is None:
                    self.specs[key] = None
                    continue
                data = np.ascontiguousarray(value)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(data.nbytes, 1)
                )
                self._segments.append(segment)
                view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
                view[...] = data
                self.specs[key] = SharedArraySpec(
                    name=segment.name, shape=tuple(data.shape), dtype=data.dtype.str
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False


#: Worker-side attachment cache: one mapping per segment per process.
_ATTACHED_SEGMENTS: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach_shared_arrays(
    specs: Mapping[str, SharedArraySpec | None],
) -> Dict[str, np.ndarray | None]:
    """Worker-side inverse of :class:`SharedArrayBundle`: specs -> arrays.

    Attachments are cached per process (a worker serves many chunks of
    one map). Python 3.11 registers every attachment with the resource
    tracker (python/cpython#82300); when this process runs its *own*
    tracker, that registration would unlink the parent-owned segment a
    second time at exit, so it is undone. Workers spawned through
    ``multiprocessing`` share the parent's tracker — there the parent's
    single registration must survive the attach, so nothing is undone.
    Returned views are read-only — workers share one mapping.
    """
    try:  # pragma: no cover - tracker plumbing is start-method dependent
        from multiprocessing import resource_tracker

        tracker_inherited = resource_tracker._resource_tracker._fd is not None
    except Exception:
        tracker_inherited = True
    arrays: Dict[str, np.ndarray | None] = {}
    for key, spec in specs.items():
        if spec is None:
            arrays[key] = None
            continue
        cached = _ATTACHED_SEGMENTS.get(spec.name)
        if cached is None:
            segment = shared_memory.SharedMemory(name=spec.name)
            if not tracker_inherited:
                try:  # pragma: no cover - own-tracker processes only
                    resource_tracker.unregister(segment._name, "shared_memory")
                except Exception:
                    pass
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
            view.flags.writeable = False
            cached = (segment, view)
            _ATTACHED_SEGMENTS[spec.name] = cached
        arrays[key] = cached[1]
    return arrays


def detach_shared_arrays(specs: Mapping[str, SharedArraySpec | None]) -> None:
    """Drop the worker-side attachments of the given specs (idempotent).

    The attachment cache in :func:`attach_shared_arrays` assumes long-
    lived segments reused across many chunks of one map. Callers that
    attach a *fresh* bundle per work item — the network serving layer
    ships every request's arrays through its own short-lived bundle —
    must detach after copying out, or the cache grows by one mapping per
    request for the worker's lifetime. Views returned for these specs
    become invalid; copy first (``np.array(view)``).
    """
    for spec in specs.values():
        if spec is None:
            continue
        cached = _ATTACHED_SEGMENTS.pop(spec.name, None)
        if cached is not None:
            cached[0].close()


def get_executor(
    spec: str | Executor | None,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> Executor:
    """Build (or pass through) an executor from a backend name.

    Args:
        spec: ``"serial"``, ``"thread"``, ``"process"``, an existing
            :class:`Executor` (returned as-is), or ``None`` for serial.
        jobs: worker count for pool backends; see :func:`resolve_jobs`.
        chunk_size: items per dispatched chunk for pool backends; the
            default targets a few chunks per worker.

    Raises:
        ValueError: on an unknown backend name.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(jobs=jobs, chunk_size=chunk_size)
    if spec == "process":
        return ProcessExecutor(jobs=jobs, chunk_size=chunk_size)
    raise ValueError(
        f"unknown executor {spec!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
