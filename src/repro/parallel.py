"""Parallel execution layer for the evaluation stack.

Every heavy workload in this repository — Monte-Carlo studies, the
adaptive (range, interval) sweep, figure regeneration — reduces to the
same pattern: map an independent, deterministic function over a list of
work items and fold the results in order. This module factors that
pattern into a small executor abstraction with three interchangeable
backends:

- ``"serial"`` — a plain loop; the reference semantics.
- ``"thread"`` — a thread pool; useful when the work releases the GIL
  (BLAS-heavy solves) or is I/O bound.
- ``"process"`` — a process pool; true CPU parallelism. Work functions
  and their arguments must be picklable (module-level callables).

All backends preserve item order, so a deterministic work function gives
bit-identical results on every backend — parallelism never changes an
answer, only how fast it arrives. Worker count resolves, in priority
order: an explicit ``jobs=`` argument, :func:`set_default_jobs` (the CLI
``--jobs`` flag), the ``LION_JOBS`` environment variable, and finally
``os.cpu_count()``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable consulted by :func:`resolve_jobs`.
JOBS_ENV_VAR = "LION_JOBS"

EXECUTOR_NAMES = ("serial", "thread", "process")

_default_jobs: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the session-wide default worker count (the CLI ``--jobs`` flag).

    Pass ``None`` to clear the override and fall back to ``LION_JOBS`` /
    ``os.cpu_count()``.

    Raises:
        ValueError: on a non-positive worker count.
    """
    global _default_jobs
    if jobs is not None and jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    _default_jobs = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count from argument, session default, env, and CPUs.

    Raises:
        ValueError: on a non-positive explicit count or ``LION_JOBS``.
    """
    if jobs is not None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        return jobs
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env is not None:
        try:
            value = int(env)
        except ValueError as error:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from error
        if value <= 0:
            raise ValueError(f"{JOBS_ENV_VAR} must be positive, got {value}")
        return value
    return max(os.cpu_count() or 1, 1)


def chunk_items(items: Sequence[ItemT], chunk_size: int) -> List[List[ItemT]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``.

    Order is preserved: concatenating the chunks restores ``items``.

    Raises:
        ValueError: on a non-positive chunk size.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    sequence = list(items)
    return [sequence[i : i + chunk_size] for i in range(0, len(sequence), chunk_size)]


def default_chunk_size(item_count: int, jobs: int, chunks_per_worker: int = 4) -> int:
    """Chunk size giving each worker a few chunks (load balancing vs overhead)."""
    if item_count <= 0:
        return 1
    return max(1, -(-item_count // max(jobs * chunks_per_worker, 1)))


def _apply_chunk(fn: Callable[[ItemT], ResultT], chunk: List[ItemT]) -> List[ResultT]:
    """Run ``fn`` over one chunk; module-level so process backends can pickle it."""
    return [fn(item) for item in chunk]


class Executor(ABC):
    """Order-preserving map/map-reduce over independent work items."""

    name: str = "abstract"

    @abstractmethod
    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, returning results in item order.

        The first exception raised by ``fn`` propagates (for parallel
        backends, after in-flight work completes).
        """

    def map_reduce(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        reduce_fn: Callable[[Any, ResultT], Any] | None = None,
        initial: Any = None,
    ) -> Any:
        """Map ``fn`` over ``items`` and fold the results in item order.

        With no ``reduce_fn`` this returns the mapped list. The fold is
        always performed serially, in item order, so reductions that are
        not associative-commutative still give backend-independent
        results.
        """
        results = self.map(fn, items)
        if reduce_fn is None:
            return results
        accumulator = initial
        for result in results:
            accumulator = reduce_fn(accumulator, result)
        return accumulator


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared chunking logic for the thread and process backends."""

    def __init__(self, jobs: int | None = None, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        sequence = list(items)
        if not sequence:
            return []
        if self.jobs == 1 or len(sequence) == 1:
            return [fn(item) for item in sequence]
        size = self.chunk_size or default_chunk_size(len(sequence), self.jobs)
        chunks = chunk_items(sequence, size)
        flattened: List[ResultT] = []
        for chunk_result in self._map_chunks(fn, chunks):
            flattened.extend(chunk_result)
        return flattened

    def _map_chunks(
        self, fn: Callable[[ItemT], ResultT], chunks: List[List[ItemT]]
    ) -> List[List[ResultT]]:
        raise NotImplementedError


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; best when the work releases the GIL."""

    name = "thread"

    def _map_chunks(
        self, fn: Callable[[ItemT], ResultT], chunks: List[List[ItemT]]
    ) -> List[List[ResultT]]:
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(_apply_chunk, [fn] * len(chunks), chunks))


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; work function and items must be picklable."""

    name = "process"

    def _map_chunks(
        self, fn: Callable[[ItemT], ResultT], chunks: List[List[ItemT]]
    ) -> List[List[ResultT]]:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(_apply_chunk, [fn] * len(chunks), chunks))


def get_executor(
    spec: str | Executor | None,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> Executor:
    """Build (or pass through) an executor from a backend name.

    Args:
        spec: ``"serial"``, ``"thread"``, ``"process"``, an existing
            :class:`Executor` (returned as-is), or ``None`` for serial.
        jobs: worker count for pool backends; see :func:`resolve_jobs`.
        chunk_size: items per dispatched chunk for pool backends; the
            default targets a few chunks per worker.

    Raises:
        ValueError: on an unknown backend name.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(jobs=jobs, chunk_size=chunk_size)
    if spec == "process":
        return ProcessExecutor(jobs=jobs, chunk_size=chunk_size)
    raise ValueError(
        f"unknown executor {spec!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
