"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e .`` needs to build an editable wheel under PEP 660; when
the ``wheel`` module is unavailable, ``python setup.py develop`` provides
the equivalent editable install through setuptools directly.
"""

from setuptools import setup

setup()
