#!/usr/bin/env python
"""Gate a benchmark JSON against a committed baseline.

Compares numeric metrics (dotted paths into the JSON payload) between a
current benchmark artifact and a committed baseline, and exits non-zero
when any metric has regressed — dropped, for higher-is-better metrics —
by more than the tolerated fraction::

    python tools/check_bench_regression.py \
        --current BENCH_adaptive_sweep.json \
        --baseline benchmarks/baselines/BENCH_adaptive_sweep.json \
        --metric cells_per_sec.fused --tolerance 0.20

CI machines are noisy and differ from the machines baselines were
recorded on, so the default tolerance is deliberately loose (20%): the
gate catches algorithmic regressions (an accidental fallback to the slow
path), not scheduling jitter.

``--min`` gates against an absolute floor instead of (or in addition to)
a baseline — machine-independent invariants like "micro-batching is at
least 3x single-request dispatch" live here, since a ratio of two
same-machine measurements needs no baseline file::

    python tools/check_bench_regression.py \
        --current BENCH_serve.json --metric speedup_32_vs_1 --min 3.0

``--metric`` is repeatable, and each occurrence takes optional
``:``-separated qualifiers, so one invocation gates several keys of one
artifact — including lower-is-better ones::

    python tools/check_bench_regression.py \
        --current BENCH_serve_net.json \
        --baseline benchmarks/baselines/BENCH_serve_net.json \
        --metric open_loop.4.requests_per_sec \
        --metric open_loop.4.p99_ms:down \
        --metric speedup_4_vs_1:min=2.5

Qualifiers: ``down`` marks the metric lower-is-better (a baseline
regression is *growth* beyond tolerance); ``min=V`` / ``max=V`` add
absolute bounds checked with or without a baseline. A bare ``--min``
keeps its original meaning — an absolute floor applied to every
higher-is-better metric without its own ``min=``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class MetricSpec:
    """One ``--metric`` occurrence: a path plus its gate qualifiers."""

    path: str
    down: bool = False
    minimum: Optional[float] = None
    maximum: Optional[float] = None


def parse_metric_spec(text: str) -> MetricSpec:
    """Parse ``path[:down][:min=V][:max=V]`` into a :class:`MetricSpec`."""
    parts = text.split(":")
    path = parts[0]
    if not path:
        raise ValueError(f"empty metric path in {text!r}")
    down = False
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    for qualifier in parts[1:]:
        if qualifier == "down":
            down = True
        elif qualifier.startswith("min="):
            minimum = float(qualifier[4:])
        elif qualifier.startswith("max="):
            maximum = float(qualifier[4:])
        else:
            raise ValueError(
                f"unknown metric qualifier {qualifier!r} in {text!r} "
                "(expected 'down', 'min=V', or 'max=V')"
            )
    return MetricSpec(path=path, down=down, minimum=minimum, maximum=maximum)


def resolve_metric(payload: Any, dotted: str) -> float:
    """Walk a dotted path (``cells_per_sec.fused``) into nested dicts."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric path {dotted!r} not found (missing {part!r})")
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise TypeError(f"metric {dotted!r} is not numeric: {node!r}")
    return float(node)


def check(
    current: dict, baseline: dict, metric: str, tolerance: float, down: bool = False
) -> tuple[bool, str]:
    """Baseline gate: return (ok, human-readable report line).

    Higher-is-better metrics fail below ``baseline * (1 - tolerance)``;
    ``down`` metrics fail above ``baseline * (1 + tolerance)``.
    """
    now = resolve_metric(current, metric)
    then = resolve_metric(baseline, metric)
    ratio = now / then if then else float("inf")
    if down:
        ceiling = then * (1.0 + tolerance)
        line = (
            f"{metric}: current={now:.2f} baseline={then:.2f} "
            f"({ratio:.2f}x, ceiling={ceiling:.2f} at +{tolerance:.0%}, lower-is-better)"
        )
        return now <= ceiling, line
    floor = then * (1.0 - tolerance)
    line = (
        f"{metric}: current={now:.2f} baseline={then:.2f} "
        f"({ratio:.2f}x, floor={floor:.2f} at -{tolerance:.0%})"
    )
    return now >= floor, line


def check_min(current: dict, metric: str, minimum: float) -> tuple[bool, str]:
    """Absolute-floor gate: (ok, human-readable report line)."""
    now = resolve_metric(current, metric)
    line = f"{metric}: current={now:.2f} (absolute floor {minimum:.2f})"
    return now >= minimum, line


def check_max(current: dict, metric: str, maximum: float) -> tuple[bool, str]:
    """Absolute-ceiling gate: (ok, human-readable report line)."""
    now = resolve_metric(current, metric)
    line = f"{metric}: current={now:.2f} (absolute ceiling {maximum:.2f})"
    return now <= maximum, line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON (optional when absolute bounds are given)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        dest="metrics",
        metavar="PATH[:down][:min=V][:max=V]",
        help=(
            "dotted path to a metric, repeatable; qualifiers mark it "
            "lower-is-better and/or add absolute bounds "
            "(default: cells_per_sec.fused)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="tolerated fractional drift from baseline before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--min",
        type=float,
        default=None,
        dest="minimum",
        help=(
            "absolute floor applied to every higher-is-better metric without "
            "its own min= qualifier (machine-independent gate)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    try:
        specs = [parse_metric_spec(text) for text in (args.metrics or ["cells_per_sec.fused"])]
    except ValueError as error:
        parser.error(str(error))
    has_bounds = args.minimum is not None or any(
        spec.minimum is not None or spec.maximum is not None for spec in specs
    )
    if args.baseline is None and not has_bounds:
        parser.error("provide --baseline, --min, a min=/max= qualifier, or several")
    with open(args.current) as handle:
        current = json.load(handle)
    baseline = None
    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    ok = True
    for spec in specs:
        minimum = spec.minimum
        if minimum is None and not spec.down:
            minimum = args.minimum
        if minimum is not None:
            floor_ok, line = check_min(current, spec.path, minimum)
            print(("OK  " if floor_ok else "FAIL ") + line)
            ok = ok and floor_ok
        if spec.maximum is not None:
            ceil_ok, line = check_max(current, spec.path, spec.maximum)
            print(("OK  " if ceil_ok else "FAIL ") + line)
            ok = ok and ceil_ok
        if baseline is not None:
            base_ok, line = check(current, baseline, spec.path, args.tolerance, down=spec.down)
            print(("OK  " if base_ok else "FAIL ") + line)
            ok = ok and base_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
