#!/usr/bin/env python
"""Gate a benchmark JSON against a committed baseline.

Compares one numeric metric (dotted path into the JSON payload) between a
current benchmark artifact and a committed baseline, and exits non-zero
when the current value has regressed — dropped, for higher-is-better
metrics — by more than the tolerated fraction::

    python tools/check_bench_regression.py \
        --current BENCH_adaptive_sweep.json \
        --baseline benchmarks/baselines/BENCH_adaptive_sweep.json \
        --metric cells_per_sec.fused --tolerance 0.20

CI machines are noisy and differ from the machines baselines were
recorded on, so the default tolerance is deliberately loose (20%): the
gate catches algorithmic regressions (an accidental fallback to the slow
path), not scheduling jitter.

``--min`` gates against an absolute floor instead of (or in addition to)
a baseline — machine-independent invariants like "micro-batching is at
least 3x single-request dispatch" live here, since a ratio of two
same-machine measurements needs no baseline file::

    python tools/check_bench_regression.py \
        --current BENCH_serve.json --metric speedup_32_vs_1 --min 3.0
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def resolve_metric(payload: Any, dotted: str) -> float:
    """Walk a dotted path (``cells_per_sec.fused``) into nested dicts."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric path {dotted!r} not found (missing {part!r})")
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise TypeError(f"metric {dotted!r} is not numeric: {node!r}")
    return float(node)


def check(
    current: dict, baseline: dict, metric: str, tolerance: float
) -> tuple[bool, str]:
    """Return (ok, human-readable report line)."""
    now = resolve_metric(current, metric)
    then = resolve_metric(baseline, metric)
    floor = then * (1.0 - tolerance)
    ratio = now / then if then else float("inf")
    line = (
        f"{metric}: current={now:.2f} baseline={then:.2f} "
        f"({ratio:.2f}x, floor={floor:.2f} at -{tolerance:.0%})"
    )
    return now >= floor, line


def check_min(current: dict, metric: str, minimum: float) -> tuple[bool, str]:
    """Absolute-floor gate: (ok, human-readable report line)."""
    now = resolve_metric(current, metric)
    line = f"{metric}: current={now:.2f} (absolute floor {minimum:.2f})"
    return now >= minimum, line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON (optional when --min is given)",
    )
    parser.add_argument(
        "--metric",
        default="cells_per_sec.fused",
        help="dotted path to the higher-is-better metric (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="tolerated fractional drop before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--min",
        type=float,
        default=None,
        dest="minimum",
        help="absolute floor the metric must meet (machine-independent gate)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    if args.baseline is None and args.minimum is None:
        parser.error("provide --baseline, --min, or both")
    with open(args.current) as handle:
        current = json.load(handle)
    ok = True
    if args.minimum is not None:
        floor_ok, line = check_min(current, args.metric, args.minimum)
        print(("OK  " if floor_ok else "FAIL ") + line)
        ok = ok and floor_ok
    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        base_ok, line = check(current, baseline, args.metric, args.tolerance)
        print(("OK  " if base_ok else "FAIL ") + line)
        ok = ok and base_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
