#!/usr/bin/env python3
"""Import-hygiene gate for the serving layer.

The experiment harness and the CLI must dispatch estimation through the
:mod:`repro.pipeline` registry — never by importing a concrete solver
module. This keeps "add a method" a one-file change and keeps the
figure/CLI layer honest about using the same serving surface downstream
users get.

Rules (checked by AST walk, so lazy in-function imports count too), for
every file under ``src/repro/experiments/`` plus ``src/repro/cli.py``:

- no import of ``repro.baselines`` or any of its submodules;
- no import of ``repro.core`` or any of its submodules, **except**
  ``repro.core.calibration`` (calibration is a workflow on top of
  estimation, not an estimator, and is itself registry-backed inside).

Runs standalone on the source tree — no package install needed::

    python tools/check_import_hygiene.py

Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: import prefixes that gated files may never use.
FORBIDDEN_PREFIXES = ("repro.baselines", "repro.core")
#: exact modules exempt from the forbidden prefixes.
ALLOWED_MODULES = ("repro.core.calibration",)


def gated_files() -> List[Path]:
    """The files the gate applies to."""
    files = sorted((SRC / "repro" / "experiments").rglob("*.py"))
    files.append(SRC / "repro" / "cli.py")
    return files


def _is_forbidden(module: str) -> bool:
    if module in ALLOWED_MODULES or any(
        module.startswith(allowed + ".") for allowed in ALLOWED_MODULES
    ):
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in FORBIDDEN_PREFIXES
    )


def _imported_modules(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """Every ``(lineno, module)`` imported anywhere in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.lineno, node.module


def check_file(path: Path) -> List[str]:
    """Violation messages for one file (empty when clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    return [
        f"{relative}:{lineno}: imports {module!r}; dispatch through "
        "repro.pipeline instead"
        for lineno, module in _imported_modules(tree)
        if _is_forbidden(module)
    ]


def main() -> int:
    """Run the gate over every gated file; 0 when clean."""
    violations: List[str] = []
    for path in gated_files():
        violations.extend(check_file(path))
    if violations:
        print("import-hygiene violations:")
        for message in violations:
            print(f"  {message}")
        return 1
    print(f"import hygiene OK ({len(gated_files())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
