#!/usr/bin/env python3
"""Import-hygiene gates for the serving, streaming, and calibration layers.

Three rules, all checked by AST walk (so lazy in-function imports count
too), runnable standalone on the source tree — no package install
needed::

    python tools/check_import_hygiene.py

**Registry dispatch.** The experiment harness and the CLI must dispatch
estimation through the :mod:`repro.pipeline` registry — never by
importing a concrete solver module. This keeps "add a method" a
one-file change and keeps the figure/CLI layer honest about using the
same serving surface downstream users get. For every file under
``src/repro/experiments/`` plus ``src/repro/cli.py``:

- no import of ``repro.baselines`` or any of its submodules;
- no import of ``repro.core`` or any of its submodules, **except**
  ``repro.core.calibration`` (calibration is a workflow on top of
  estimation, not an estimator, and is itself registry-backed inside).

**Stream layering.** :mod:`repro.stream` sits above core/pipeline/serve:
it may import them, but nothing below it may import it back. Within
``src/repro/``, only ``repro/stream/`` itself, ``repro/serve/net/``
(the HTTP face of sessions), and ``repro/cli.py`` (``lion replay``)
may import ``repro.stream`` — so the one-shot path never grows a
hidden dependency on the session subsystem.

**Calibration layering.** :mod:`repro.calib` (the fleet calibration
registry) likewise sits above the solver stack: it may import core /
pipeline / parallel / datasets, but the estimation path must never
depend on the registry — a solver works from explicit arrays whether or
not a store exists. Within ``src/repro/``, only ``repro/calib/`` itself,
``repro/serve/`` (engine resolver wiring and the HTTP face), and
``repro/cli.py`` (``lion calib`` / ``lion serve``) may import
``repro.calib``.

Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: import prefixes that registry-dispatch-gated files may never use.
FORBIDDEN_PREFIXES = ("repro.baselines", "repro.core")
#: exact modules exempt from the forbidden prefixes.
ALLOWED_MODULES = ("repro.core.calibration",)

#: the layered package of the stream rule.
STREAM_PREFIX = "repro.stream"
#: directories (relative to src/) whose files may import repro.stream.
STREAM_ALLOWED_DIRS = ("repro/stream", "repro/serve/net")
#: single files (relative to src/) that may import repro.stream.
STREAM_ALLOWED_FILES = ("repro/cli.py",)

#: the layered package of the calibration rule.
CALIB_PREFIX = "repro.calib"
#: directories (relative to src/) whose files may import repro.calib.
CALIB_ALLOWED_DIRS = ("repro/calib", "repro/serve")
#: single files (relative to src/) that may import repro.calib.
CALIB_ALLOWED_FILES = ("repro/cli.py",)


def gated_files() -> List[Path]:
    """The files the registry-dispatch rule applies to."""
    files = sorted((SRC / "repro" / "experiments").rglob("*.py"))
    files.append(SRC / "repro" / "cli.py")
    return files


def stream_gated_files() -> List[Path]:
    """The files the stream-layering rule applies to: all of src/repro
    except the locations allowed to import :mod:`repro.stream`."""
    files = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in STREAM_ALLOWED_FILES:
            continue
        if any(relative.startswith(prefix + "/") for prefix in STREAM_ALLOWED_DIRS):
            continue
        files.append(path)
    return files


def _is_forbidden(module: str) -> bool:
    if module in ALLOWED_MODULES or any(
        module.startswith(allowed + ".") for allowed in ALLOWED_MODULES
    ):
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in FORBIDDEN_PREFIXES
    )


def _is_stream(module: str) -> bool:
    return module == STREAM_PREFIX or module.startswith(STREAM_PREFIX + ".")


def calib_gated_files() -> List[Path]:
    """The files the calibration-layering rule applies to: all of
    src/repro except the locations allowed to import :mod:`repro.calib`."""
    files = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in CALIB_ALLOWED_FILES:
            continue
        if any(relative.startswith(prefix + "/") for prefix in CALIB_ALLOWED_DIRS):
            continue
        files.append(path)
    return files


def _is_calib(module: str) -> bool:
    return module == CALIB_PREFIX or module.startswith(CALIB_PREFIX + ".")


def _imported_modules(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """Every ``(lineno, module)`` imported anywhere in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            yield node.lineno, node.module


def check_file(path: Path) -> List[str]:
    """Registry-dispatch violation messages for one file (empty when clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    return [
        f"{relative}:{lineno}: imports {module!r}; dispatch through "
        "repro.pipeline instead"
        for lineno, module in _imported_modules(tree)
        if _is_forbidden(module)
    ]


def check_stream_file(path: Path) -> List[str]:
    """Stream-layering violation messages for one file (empty when clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    return [
        f"{relative}:{lineno}: imports {module!r}; only repro.serve.net "
        "and the CLI may import the session layer"
        for lineno, module in _imported_modules(tree)
        if _is_stream(module)
    ]


def check_calib_file(path: Path) -> List[str]:
    """Calibration-layering violation messages for one file (empty when clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    return [
        f"{relative}:{lineno}: imports {module!r}; only repro.serve "
        "and the CLI may import the calibration registry"
        for lineno, module in _imported_modules(tree)
        if _is_calib(module)
    ]


def main() -> int:
    """Run all three gates over their file sets; 0 when clean."""
    violations: List[str] = []
    for path in gated_files():
        violations.extend(check_file(path))
    stream_files = stream_gated_files()
    for path in stream_files:
        violations.extend(check_stream_file(path))
    calib_files = calib_gated_files()
    for path in calib_files:
        violations.extend(check_calib_file(path))
    if violations:
        print("import-hygiene violations:")
        for message in violations:
            print(f"  {message}")
        return 1
    print(
        f"import hygiene OK ({len(gated_files())} dispatch-gated, "
        f"{len(stream_files)} stream-gated, {len(calib_files)} "
        "calib-gated files checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
